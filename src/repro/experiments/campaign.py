"""The paper campaign: plan → resolve → render over one shared result store.

``repro experiment`` runs one experiment at a time; this module runs the
*paper* — all of E1–E11 — as a single resumable campaign.  The refactored
registry (:mod:`repro.experiments.registry`) expresses each experiment as an
:class:`ExperimentDefinition` whose measurement demand is pure data:

* ``plan(scale)`` returns the experiment's :class:`MeasurementSpec` list —
  content-hashable sweep configs naming a protocol, ``(n, k)``, a workload
  and a seed derivation, never a live object;
* :func:`resolve_specs` deduplicates specs (within *and across* experiments —
  E1/E2/E3/E5/E10/E11 share grid cells), serves stored ones from the
  :class:`~repro.sweeps.store.SweepStore`, and shards the rest across
  :class:`~repro.sweeps.runner.SweepRunner` worker processes;
* ``render(resolved, scale, seed, cache)`` turns resolved records into the
  :class:`~repro.experiments.runner.ExperimentResult` — tables, figures,
  certificates — touching no channel simulation of its own (E4's adaptive
  adversary and E7/E8's constructions, which are interactive or
  simulation-free, are the documented exceptions).

Because every measurement is keyed by its config hash, a
:class:`PaperCampaign` interrupted at any point resumes with zero
recomputation, a second run is a 100% store hit (``store.misses == 0``), and
results are bit-identical at any worker count.  The CLI front end is
``repro paper run|status|report`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.experiments.cache import FamilyCache, shared_cache
from repro.experiments.config import ExperimentScale, QUICK
from repro.experiments.runner import ExperimentResult
from repro.sweeps.runner import SweepRunner
from repro.sweeps.spec import SweepConfig
from repro.sweeps.store import ConfigRecord, SweepStore

__all__ = [
    "MANIFEST_NAME",
    "MeasurementSpec",
    "ResolvedSpecs",
    "dedup_specs",
    "resolve_specs",
    "ExperimentDefinition",
    "CampaignResult",
    "PaperCampaign",
    "render_campaign_report",
]

#: A measurement demand is exactly a sweep config: protocol name, (n, k),
#: workload, batch, seed, horizon and parameter overrides — plain data with a
#: stable content hash, which is what lets the store memoize it.
MeasurementSpec = SweepConfig

#: File the campaign manifest is written to inside the store root.
MANIFEST_NAME = "campaign_manifest.json"


class ResolvedSpecs:
    """Resolved measurements, addressable by the spec that demanded them.

    A read-only view handed to ``render`` functions: ``resolved[spec]`` is the
    :class:`~repro.sweeps.store.ConfigRecord` for that spec's config hash.
    The latency accessors implement the two disciplines the experiments use —
    *strict* (every pattern must have solved; raising otherwise, like
    ``worst_latency`` always did) and *capped* (unsolved patterns count as
    the spec's horizon, like the capped latency jobs).

    Attributes
    ----------
    hits, misses:
        Store traffic of the resolution that built this view (unique specs
        served from disk vs freshly computed).
    """

    def __init__(
        self, records: Dict[str, ConfigRecord], *, hits: int = 0, misses: int = 0
    ) -> None:
        self._records = dict(records)
        self.hits = hits
        self.misses = misses

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, spec: MeasurementSpec) -> bool:
        return spec.config_hash() in self._records

    def __getitem__(self, spec: MeasurementSpec) -> ConfigRecord:
        try:
            return self._records[spec.config_hash()]
        except KeyError:
            raise KeyError(
                f"no resolved record for spec {spec.label()!r} — "
                "was it missing from the plan?"
            ) from None

    def latencies(self, spec: MeasurementSpec, *, capped: bool = False) -> List[int]:
        """Per-pattern latencies of one spec, strict or horizon-capped."""
        record = self[spec]
        solved = record.columns["solved"]
        raw = record.columns["latency"]
        if capped:
            return [int(v) if ok else int(spec.max_slots) for v, ok in zip(raw, solved)]
        if not all(solved):
            raise RuntimeError(
                f"{spec.label()}: {sum(1 for ok in solved if not ok)} pattern(s) "
                f"unsolved within max_slots={spec.max_slots}"
            )
        return [int(v) for v in raw]

    def worst(self, *specs: MeasurementSpec, capped: bool = False) -> int:
        """Worst (max) latency over every pattern of every given spec."""
        if not specs:
            raise ValueError("worst() needs at least one spec")
        return max(max(self.latencies(spec, capped=capped)) for spec in specs)

    def mean(self, spec: MeasurementSpec, *, capped: bool = False) -> float:
        """Mean latency over one spec's batch."""
        values = self.latencies(spec, capped=capped)
        return float(sum(values)) / len(values)


def dedup_specs(specs: Sequence[MeasurementSpec]) -> List[MeasurementSpec]:
    """Order-preserving dedup by config hash (first occurrence wins)."""
    seen: Dict[str, None] = {}
    out: List[MeasurementSpec] = []
    for spec in specs:
        key = spec.config_hash()
        if key not in seen:
            seen[key] = None
            out.append(spec)
    return out


def resolve_specs(
    specs: Sequence[MeasurementSpec],
    *,
    workers: int = 0,
    store: Optional[SweepStore] = None,
    backend: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ResolvedSpecs:
    """Resolve a spec list into a :class:`ResolvedSpecs` view.

    Specs are deduplicated by config hash first (a spec demanded by several
    experiments is computed once), stored ones are served from ``store``, and
    the rest run through a :class:`~repro.sweeps.runner.SweepRunner` — so the
    resolution inherits the sweep layer's process sharding, incremental
    persistence and worker-count-invariant results, plus its ``store.hits`` /
    ``store.misses`` counters.
    """
    unique = dedup_specs(specs)
    runner = SweepRunner(workers=workers, store=store, backend=backend)
    result = runner.run(unique, progress=progress)
    records = {
        spec.config_hash(): record for spec, record in zip(unique, result.records)
    }
    return ResolvedSpecs(
        records, hits=result.reused, misses=len(unique) - result.reused
    )


@dataclass(frozen=True)
class ExperimentDefinition:
    """One experiment as a declarative plan/render pair.

    Attributes
    ----------
    experiment:
        Registry ID (``"E1"`` … ``"E11"``).
    title:
        The :class:`ExperimentResult` title the render produces.
    plan:
        ``scale -> [MeasurementSpec]`` — the experiment's measurement demand
        as pure data.  Must be deterministic in ``scale`` alone (render calls
        it again to address results).  Render-only experiments return ``[]``.
    render:
        ``(resolved, scale, seed, cache) -> ExperimentResult`` — turns
        resolved records into tables/figures/certificates.  ``seed`` feeds
        only render-side randomness (E4's adaptive adversary, E7/E8's
        constructions); engine measurements are keyed by the specs' own
        seeds, so two renders over one store agree bit for bit.
    default_seed:
        The ``seed`` used when the caller does not pass one (the historical
        per-experiment defaults).
    """

    experiment: str
    title: str
    plan: Callable[[ExperimentScale], List[MeasurementSpec]]
    render: Callable[
        [ResolvedSpecs, ExperimentScale, int, FamilyCache], ExperimentResult
    ]
    default_seed: int = 0

    def run(
        self,
        scale: ExperimentScale = QUICK,
        *,
        seed: Optional[int] = None,
        cache: Optional[FamilyCache] = None,
        store: Optional[SweepStore] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> ExperimentResult:
        """Plan, resolve and render this experiment end to end.

        Without a ``store`` the resolution is ephemeral (computed, returned,
        forgotten) — exactly what the single-experiment entry points need;
        with one, the experiment shares the campaign's memoization tier.
        ``workers=None`` follows ``scale.workers``.
        """
        seed = self.default_seed if seed is None else seed
        cache = cache if cache is not None else shared_cache
        workers = scale.workers if workers is None else workers
        with obs.span("experiments.plan", experiment=self.experiment):
            specs = self.plan(scale)
        with obs.span(
            "experiments.resolve", experiment=self.experiment, specs=len(specs)
        ):
            resolved = resolve_specs(
                specs, workers=workers, store=store, backend=backend
            )
        with obs.span("experiments.render", experiment=self.experiment):
            return self.render(resolved, scale, seed, cache)


@dataclass
class CampaignResult:
    """Everything one campaign run produced: results by ID plus the manifest."""

    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    manifest: Dict[str, object] = field(default_factory=dict)

    @property
    def all_certificates_hold(self) -> bool:
        return all(r.all_certificates_hold for r in self.results.values())


def _definitions(experiments: Optional[Sequence[str]] = None):
    """The requested :class:`ExperimentDefinition` list, registry order.

    Imported lazily: the registry imports this module for the definition
    types, so the campaign side must not import it at module load.
    """
    from repro.experiments.registry import DEFINITIONS

    if experiments is None:
        return list(DEFINITIONS.values())
    out = []
    for experiment_id in experiments:
        try:
            out.append(DEFINITIONS[experiment_id.upper()])
        except KeyError:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; valid IDs: "
                f"{sorted(DEFINITIONS)}"
            ) from None
    return out


@dataclass
class PaperCampaign:
    """Run the whole paper — E1–E11 — against one shared, resumable store.

    The campaign plans every experiment, deduplicates the union of their
    specs, resolves all pending work process-parallel through the sweep
    layer, and renders each experiment from the shared result view.  With a
    ``store``, every resolved config is persisted the moment it completes:
    an interrupted run resumes with zero recomputation and a completed one
    replays entirely from disk.

    Parameters
    ----------
    scale:
        Experiment scale preset shared by every experiment.
    store:
        The shared :class:`~repro.sweeps.store.SweepStore` (``None`` runs
        ephemerally — still deduplicated, just not resumable).
    workers:
        Worker processes for the resolve phase (``None``: ``scale.workers``).
    backend:
        Array backend name for the engines (execution metadata only).
    experiments:
        Subset of experiment IDs (default: all, registry order).
    """

    scale: ExperimentScale = QUICK
    store: Optional[SweepStore] = None
    workers: Optional[int] = None
    backend: Optional[str] = None
    experiments: Optional[Sequence[str]] = None

    def plan(self) -> Dict[str, List[MeasurementSpec]]:
        """Per-experiment spec lists (pre-dedup), in registry order."""
        with obs.span("experiments.plan", experiment="campaign"):
            return {
                definition.experiment: definition.plan(self.scale)
                for definition in _definitions(self.experiments)
            }

    def status(self) -> Dict[str, object]:
        """How much of the campaign the store already covers, per experiment."""
        plans = self.plan()
        per_experiment = {}
        all_specs: List[MeasurementSpec] = []
        for experiment_id, specs in plans.items():
            unique = dedup_specs(specs)
            stored = (
                len(self.store.completed(unique)) if self.store is not None else 0
            )
            per_experiment[experiment_id] = {
                "specs": len(specs),
                "unique": len(unique),
                "stored": stored,
            }
            all_specs.extend(specs)
        unique_all = dedup_specs(all_specs)
        return {
            "scale": self.scale.name,
            "experiments": per_experiment,
            "specs_total": len(all_specs),
            "specs_unique": len(unique_all),
            "stored": (
                len(self.store.completed(unique_all)) if self.store is not None else 0
            ),
        }

    def run(
        self, *, progress: Optional[Callable[[str], None]] = None
    ) -> CampaignResult:
        """Resolve and render every experiment; returns results + manifest."""
        definitions = _definitions(self.experiments)
        workers = self.scale.workers if self.workers is None else self.workers
        t_start = time.perf_counter()
        plans = self.plan()
        all_specs = [spec for specs in plans.values() for spec in specs]
        unique = dedup_specs(all_specs)
        t_resolve = time.perf_counter()
        with obs.span(
            "experiments.resolve",
            experiment="campaign",
            specs=len(all_specs),
            unique=len(unique),
            workers=workers,
        ):
            resolved = resolve_specs(
                unique,
                workers=workers,
                store=self.store,
                backend=self.backend,
                progress=progress,
            )
        resolve_seconds = time.perf_counter() - t_resolve

        results: Dict[str, ExperimentResult] = {}
        render_seconds: Dict[str, float] = {}
        for definition in definitions:
            t0 = time.perf_counter()
            with obs.span("experiments.render", experiment=definition.experiment):
                results[definition.experiment] = definition.render(
                    resolved, self.scale, definition.default_seed, shared_cache
                )
            render_seconds[definition.experiment] = time.perf_counter() - t0

        hit_rate = (
            resolved.hits / len(unique) if len(unique) else 1.0
        )
        manifest: Dict[str, object] = {
            "scale": self.scale.name,
            "experiments": {
                experiment_id: {
                    "specs": len(plans[experiment_id]),
                    "unique": len(dedup_specs(plans[experiment_id])),
                    "render_seconds": round(render_seconds[experiment_id], 4),
                    "certificates_hold": results[experiment_id].all_certificates_hold,
                }
                for experiment_id in results
            },
            "specs_total": len(all_specs),
            "specs_unique": len(unique),
            "cross_experiment_duplicates": len(all_specs) - len(unique),
            "store_hits": resolved.hits,
            "store_misses": resolved.misses,
            "store_hit_rate": round(hit_rate, 4),
            "workers": workers,
            "resolve_seconds": round(resolve_seconds, 4),
            "total_seconds": round(time.perf_counter() - t_start, 4),
        }
        if self.store is not None:
            self.store.root.mkdir(parents=True, exist_ok=True)
            (self.store.root / MANIFEST_NAME).write_text(
                json.dumps(manifest, indent=2) + "\n"
            )
        return CampaignResult(results=results, manifest=manifest)


def render_campaign_report(campaign: CampaignResult) -> str:
    """Render a full paper report — every experiment plus the run manifest."""
    from repro.experiments.report import _render_result

    manifest = campaign.manifest
    lines: List[str] = [
        "# Paper campaign report",
        "",
        "Generated by `repro paper` (see `repro.experiments.campaign`): all",
        "experiments planned as content-hashed measurement specs, resolved",
        "through one shared resumable store, and rendered below.",
        "",
        f"Scale: **{manifest.get('scale', '?')}** · "
        f"specs: {manifest.get('specs_total', '?')} planned / "
        f"{manifest.get('specs_unique', '?')} unique · "
        f"store: {manifest.get('store_hits', 0)} hits, "
        f"{manifest.get('store_misses', 0)} misses "
        f"(hit rate {manifest.get('store_hit_rate', 0.0):.0%})",
        "",
    ]
    for result in campaign.results.values():
        lines.extend(_render_result(result))
    lines += ["## Campaign manifest", "", "```json"]
    lines.append(json.dumps(manifest, indent=2))
    lines += ["```", ""]
    return "\n".join(lines).rstrip() + "\n"
