"""Experiment orchestration: configurations, the E1–E11 registry, and the campaign.

The experiment index in ``DESIGN.md`` maps every claim of the paper to an
experiment; this package contains the code that runs them.  Each experiment is
an :class:`~repro.experiments.campaign.ExperimentDefinition` — a ``plan``
function stating its measurement demand as content-hashable specs, plus a pure
``render`` over the resolved records — and the historical per-experiment
callables wrap the definitions, taking an
:class:`~repro.experiments.config.ExperimentScale` and returning an
:class:`~repro.experiments.runner.ExperimentResult` with raw rows, rendered
tables/figures, and bound certificates.
:class:`~repro.experiments.campaign.PaperCampaign` runs all of E1–E11 against
one shared, resumable :class:`~repro.sweeps.store.SweepStore` (``repro paper``
on the command line).  The ``benchmarks/`` tree and ``EXPERIMENTS.md`` are
both generated from this registry so that the numbers in the documentation are
always reproducible by re-running the benchmarks.
"""

from repro.experiments.config import ExperimentScale, QUICK, STANDARD, FULL
from repro.experiments.cache import FamilyCache, shared_cache
from repro.experiments.runner import (
    ExperimentResult,
    measure_latency,
    worst_latency,
    mean_latency,
)
from repro.experiments.campaign import (
    CampaignResult,
    ExperimentDefinition,
    MeasurementSpec,
    PaperCampaign,
    ResolvedSpecs,
    dedup_specs,
    render_campaign_report,
    resolve_specs,
)
from repro.experiments.registry import (
    DEFINITIONS,
    EXPERIMENTS,
    run_experiment,
    experiment_e1_scenario_a,
    experiment_e2_scenario_b,
    experiment_e3_scenario_c,
    experiment_e4_lower_bound,
    experiment_e5_scenario_gap,
    experiment_e6_randomized,
    experiment_e7_matrix_structure,
    experiment_e8_selective_families,
    experiment_e9_baselines,
    experiment_e10_ablations,
    experiment_e11_global_vs_local_clock,
)
from repro.experiments.report import generate_experiments_report

__all__ = [
    "ExperimentScale",
    "QUICK",
    "STANDARD",
    "FULL",
    "FamilyCache",
    "shared_cache",
    "ExperimentResult",
    "measure_latency",
    "worst_latency",
    "mean_latency",
    "CampaignResult",
    "ExperimentDefinition",
    "MeasurementSpec",
    "PaperCampaign",
    "ResolvedSpecs",
    "dedup_specs",
    "render_campaign_report",
    "resolve_specs",
    "DEFINITIONS",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_e1_scenario_a",
    "experiment_e2_scenario_b",
    "experiment_e3_scenario_c",
    "experiment_e4_lower_bound",
    "experiment_e5_scenario_gap",
    "experiment_e6_randomized",
    "experiment_e7_matrix_structure",
    "experiment_e8_selective_families",
    "experiment_e9_baselines",
    "experiment_e10_ablations",
    "experiment_e11_global_vs_local_clock",
    "generate_experiments_report",
]
