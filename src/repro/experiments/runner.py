"""Runner helpers and the common result container for experiments.

An experiment produces an :class:`ExperimentResult`: the raw per-configuration
rows (flat dictionaries suitable for CSV export), the rendered tables and
figures destined for EXPERIMENTS.md, and the bound certificates that encode
the pass/fail verdicts.  The measurement helpers wrap the simulator with the
"max/mean over a batch of patterns" conventions every experiment shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro._util import RngLike, as_generator
from repro.analysis.certificates import BoundCertificate
from repro.channel.protocols import DeterministicProtocol, RandomizedPolicy
from repro.channel.simulator import run_randomized
from repro.channel.wakeup import WakeupPattern

__all__ = ["ExperimentResult", "measure_latency", "worst_latency", "mean_latency"]


@dataclass
class ExperimentResult:
    """Everything an experiment produced.

    Attributes
    ----------
    experiment:
        Identifier (``"E1"`` ... ``"E10"``).
    title:
        Human-readable title (matches DESIGN.md's experiment index).
    scale:
        Name of the :class:`~repro.experiments.config.ExperimentScale` used.
    rows:
        Flat per-configuration dictionaries (exported to CSV by the harness).
    tables:
        Rendered text tables keyed by a short name.
    figures:
        Rendered ASCII figures keyed by a short name.
    certificates:
        Bound certificates produced by the experiment.
    notes:
        Free-form remarks (e.g. which substitutions were exercised).
    """

    experiment: str
    title: str
    scale: str
    rows: List[Dict] = field(default_factory=list)
    tables: Dict[str, str] = field(default_factory=dict)
    figures: Dict[str, str] = field(default_factory=dict)
    certificates: List[BoundCertificate] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def all_certificates_hold(self) -> bool:
        """True iff every certificate attached to the experiment holds."""
        return all(cert.holds for cert in self.certificates)

    def summary(self) -> str:
        """Multi-line summary: title, certificates, then tables."""
        lines = [f"{self.experiment}: {self.title} (scale={self.scale})"]
        for cert in self.certificates:
            lines.append("  " + cert.describe())
        for note in self.notes:
            lines.append("  note: " + note)
        for name, table in self.tables.items():
            lines.append("")
            lines.append(f"-- {name} --")
            lines.append(table)
        for name, figure in self.figures.items():
            lines.append("")
            lines.append(f"-- {name} --")
            lines.append(figure)
        return "\n".join(lines)


def measure_latency(
    protocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = 1_000_000,
    rng: RngLike = None,
) -> List[int]:
    """Latency (slots from first wake-up to first success) for each pattern.

    Deterministic protocols route through the vectorized batch engine
    (:func:`repro.engine.run_deterministic_batch` — bit-identical outcomes to
    per-pattern simulation, resolved in one shared scan); randomized policies
    use the slot-loop engine with a shared generator.  A run that does not
    solve wake-up within the horizon raises, because every protocol in the
    library is supposed to succeed and a silent truncation would corrupt the
    tables.
    """
    patterns = list(patterns)
    if isinstance(protocol, DeterministicProtocol):
        from repro.engine import run_deterministic_batch

        batch = run_deterministic_batch(protocol, patterns, max_slots=max_slots)
        return [int(latency) for latency in batch.require_all_solved()]
    if isinstance(protocol, RandomizedPolicy):
        gen = as_generator(rng)
        return [
            run_randomized(protocol, pattern, rng=gen, max_slots=max_slots).require_solved()
            for pattern in patterns
        ]
    raise TypeError(f"unsupported protocol type {type(protocol).__name__}")


def worst_latency(
    protocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = 1_000_000,
    rng: RngLike = None,
) -> int:
    """Maximum latency over a batch of patterns (the worst-case estimate)."""
    return max(measure_latency(protocol, patterns, max_slots=max_slots, rng=rng))


def mean_latency(
    protocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = 1_000_000,
    rng: RngLike = None,
) -> float:
    """Mean latency over a batch of patterns (used for randomized protocols)."""
    return float(np.mean(measure_latency(protocol, patterns, max_slots=max_slots, rng=rng)))
