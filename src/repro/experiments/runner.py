"""Runner helpers and the common result container for experiments.

An experiment produces an :class:`ExperimentResult`: the raw per-configuration
rows (flat dictionaries suitable for CSV export), the rendered tables and
figures destined for EXPERIMENTS.md, and the bound certificates that encode
the pass/fail verdicts.  The measurement helpers wrap the simulator with the
"max/mean over a batch of patterns" conventions every experiment shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro._util import RngLike
from repro.analysis.certificates import BoundCertificate
from repro.channel.protocols import DeterministicProtocol, RandomizedPolicy
from repro.channel.wakeup import WakeupPattern

__all__ = [
    "ExperimentResult",
    "resolve_batch",
    "capped_latencies",
    "measure_latency",
    "worst_latency",
    "mean_latency",
    "LatencyJob",
    "sweep_latencies",
]


@dataclass
class ExperimentResult:
    """Everything an experiment produced.

    Attributes
    ----------
    experiment:
        Identifier (``"E1"`` ... ``"E10"``).
    title:
        Human-readable title (matches DESIGN.md's experiment index).
    scale:
        Name of the :class:`~repro.experiments.config.ExperimentScale` used.
    rows:
        Flat per-configuration dictionaries (exported to CSV by the harness).
    tables:
        Rendered text tables keyed by a short name.
    figures:
        Rendered ASCII figures keyed by a short name.
    certificates:
        Bound certificates produced by the experiment.
    notes:
        Free-form remarks (e.g. which substitutions were exercised).
    """

    experiment: str
    title: str
    scale: str
    rows: List[Dict] = field(default_factory=list)
    tables: Dict[str, str] = field(default_factory=dict)
    figures: Dict[str, str] = field(default_factory=dict)
    certificates: List[BoundCertificate] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def all_certificates_hold(self) -> bool:
        """True iff every certificate attached to the experiment holds."""
        return all(cert.holds for cert in self.certificates)

    def summary(self) -> str:
        """Multi-line summary: title, certificates, then tables."""
        lines = [f"{self.experiment}: {self.title} (scale={self.scale})"]
        for cert in self.certificates:
            lines.append("  " + cert.describe())
        for note in self.notes:
            lines.append("  note: " + note)
        for name, table in self.tables.items():
            lines.append("")
            lines.append(f"-- {name} --")
            lines.append(table)
        for name, figure in self.figures.items():
            lines.append("")
            lines.append(f"-- {name} --")
            lines.append(figure)
        return "\n".join(lines)


def resolve_batch(
    protocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = 1_000_000,
    rng: RngLike = None,
):
    """Resolve a pattern batch through the engine for the protocol's kind.

    This is the experiments' single dispatch onto :mod:`repro.engine`:
    deterministic protocols route through
    :func:`~repro.engine.run_deterministic_batch`, randomized policies
    through :func:`~repro.engine.run_randomized_batch` (one
    ``SeedSequence``-spawned child generator per pattern, derived from
    ``rng``).  Returns the columnar :class:`~repro.engine.BatchResult`.
    """
    patterns = list(patterns)
    if isinstance(protocol, DeterministicProtocol):
        from repro.engine import run_deterministic_batch

        return run_deterministic_batch(protocol, patterns, max_slots=max_slots)
    if isinstance(protocol, RandomizedPolicy):
        from repro.engine import run_randomized_batch

        return run_randomized_batch(protocol, patterns, seed=rng, max_slots=max_slots)
    raise TypeError(f"unsupported protocol type {type(protocol).__name__}")


def capped_latencies(
    protocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = 1_000_000,
    rng: RngLike = None,
) -> List[int]:
    """Per-pattern latency, with unsolved rows capped at ``max_slots``.

    The forgiving counterpart to :func:`measure_latency` for comparisons that
    include protocols allowed to time out (baseline tables, lower-bound
    probes): instead of raising on an unsolved row it records the horizon as
    the latency, which keeps maxima and ratios well-defined.
    """
    batch = resolve_batch(protocol, patterns, max_slots=max_slots, rng=rng)
    return [
        int(latency) if solved else int(max_slots)
        for solved, latency in zip(batch.solved, batch.latency)
    ]


def measure_latency(
    protocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = 1_000_000,
    rng: RngLike = None,
) -> List[int]:
    """Latency (slots from first wake-up to first success) for each pattern.

    Both protocol kinds route through the vectorized batch engine via
    :func:`resolve_batch` (bit-identical outcomes to per-pattern simulation,
    resolved in one shared scan).  A run that does not solve wake-up within
    the horizon raises, because every protocol in the library is supposed to
    succeed and a silent truncation would corrupt the tables.
    """
    batch = resolve_batch(protocol, patterns, max_slots=max_slots, rng=rng)
    return [int(latency) for latency in batch.require_all_solved()]


def worst_latency(
    protocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = 1_000_000,
    rng: RngLike = None,
) -> int:
    """Maximum latency over a batch of patterns (the worst-case estimate)."""
    return max(measure_latency(protocol, patterns, max_slots=max_slots, rng=rng))


def mean_latency(
    protocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = 1_000_000,
    rng: RngLike = None,
) -> float:
    """Mean latency over a batch of patterns (used for randomized protocols)."""
    return float(np.mean(measure_latency(protocol, patterns, max_slots=max_slots, rng=rng)))


# ---------------------------------------------------------------------------
# Process-parallel config sweeps
# ---------------------------------------------------------------------------

#: One sweep measurement: ``(protocol, patterns, max_slots, capped)``.
#: ``capped=False`` measures the strict worst latency (unsolved rows raise),
#: ``capped=True`` the max of horizon-capped latencies (unsolved rows count
#: as ``max_slots``) — the two conventions the experiment tables use.
LatencyJob = tuple


def _latency_job(job: LatencyJob) -> int:
    """Resolve one sweep measurement (top-level so it pickles into workers)."""
    protocol, patterns, max_slots, capped = job
    if not isinstance(protocol, DeterministicProtocol):
        raise TypeError(
            "sweep_latencies handles deterministic protocols only (randomized "
            f"policies would draw fresh entropy per worker), got {type(protocol).__name__}"
        )
    if capped:
        return max(capped_latencies(protocol, patterns, max_slots=max_slots))
    return worst_latency(protocol, patterns, max_slots=max_slots)


def sweep_latencies(jobs: Sequence[LatencyJob], *, workers: int = 0) -> List[int]:
    """Resolve a batch of per-config latency measurements, process-parallel.

    The experiment registry's multi-config sweeps (E3/E5/E10/E11) collect one
    :data:`LatencyJob` per table cell — patterns drawn up front in the
    experiment's original generator order — and shard the *resolution* across
    ``workers`` processes via :func:`repro.sweeps.runner.map_jobs`.  Because
    each job is a pure function of its (deterministic) protocol and patterns,
    the results are bit-for-bit identical to resolving the jobs serially, for
    any worker count.
    """
    from repro.sweeps.runner import map_jobs

    return [int(latency) for latency in map_jobs(_latency_job, jobs, workers=workers)]
