"""Caching of constructed combinatorial objects across an experiment sweep.

Selective families are by far the most expensive objects the experiments
build (a full concatenation for ``n = 512`` touches millions of random draws),
and sweeps ask for them repeatedly: ``WakeupWithK(n, k)`` for every ``k`` in a
sweep needs the prefix of the same family sequence.  :class:`FamilyCache`
builds the longest concatenation once per ``(n, seed, method)`` and hands out
prefixes, which keeps benchmark times dominated by simulation rather than
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import obs
from repro._util import ceil_log2
from repro.core.selective import SelectiveFamily, concatenated_families

__all__ = ["FamilyCache", "shared_cache"]


@dataclass
class FamilyCache:
    """Cache of concatenated ``(n, 2^j)``-selective family sequences."""

    _store: Dict[Tuple[int, int, str], List[SelectiveFamily]] = field(default_factory=dict)

    def concatenation(
        self, n: int, max_k: int, *, seed: int = 0, method: str = "random"
    ) -> List[SelectiveFamily]:
        """Return the families for ``j = 1..⌈log₂ max_k⌉`` (building/extending as needed).

        The cache key ignores ``max_k``: the longest sequence built so far for
        ``(n, seed, method)`` is kept and prefixes are sliced from it, so
        requesting ``max_k = 8`` after ``max_k = 256`` is free.
        """
        key = (int(n), int(seed), method)
        needed = max(1, ceil_log2(max(2, min(max_k, n))))
        cached = self._store.get(key, [])
        if len(cached) < needed:
            # Gauges, not counters: cache state is per-process, so hit/miss
            # totals legitimately vary with the sweep worker count.
            obs.gauge("family_cache.misses")
            with obs.span("family_cache.build", n=int(n), levels=needed):
                # Rebuild the whole sequence deterministically from the seed so
                # that prefixes are identical no matter in which order sizes
                # were requested.
                cached = concatenated_families(
                    n, min(2**needed, n), method=method, rng=seed
                )
            self._store[key] = cached
        else:
            obs.gauge("family_cache.hits")
        return cached[:needed]

    def clear(self) -> None:
        """Drop every cached sequence."""
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)


#: Module-level cache shared by the benchmark harness (cleared between scales
#: only if the caller wants to measure construction cost explicitly).
shared_cache = FamilyCache()
