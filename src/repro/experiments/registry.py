"""The experiment registry: E1–E11, each as a declarative plan/render pair.

E1–E10 reproduce DESIGN.md's experiment index; E11 is the global-vs-local
clock extension (the paper's closing open question).

Every experiment is an :class:`~repro.experiments.campaign.ExperimentDefinition`:

* ``plan(scale)`` states the experiment's measurement demand as a list of
  content-hashable :class:`~repro.experiments.campaign.MeasurementSpec`
  sweep configs (protocol name, ``(n, k)``, workload, batch, seed, horizon)
  — pure data, no live objects;
* ``render(resolved, scale, seed, cache)`` turns the resolved records into
  the :class:`~repro.experiments.runner.ExperimentResult` tables, figures
  and certificates.

The split is what makes the paper campaign (:mod:`repro.experiments.campaign`)
possible: specs deduplicate across experiments (E1/E2/E3/E5/E10/E11 share
grid cells), resolve process-parallel through :mod:`repro.sweeps`, and
memoize in one :class:`~repro.sweeps.store.SweepStore`.  Render functions are
pure over the resolved records; the only render-side computation left is
interactive or simulation-free by nature (E4's adaptive adversary, E7's
matrix figures, E8's family constructions), driven by the experiment ``seed``.

Every spec uses :data:`BATTERY_SEED` so overlapping cells hash identically
across experiments; the per-experiment ``seed`` argument only feeds that
render-side randomness.  The historical callables
(``experiment_e1_scenario_a`` …) remain as thin wrappers over the
definitions, and the benchmark files under ``benchmarks/`` still call them
with the ``QUICK`` scale; ``EXPERIMENTS.md`` is generated from the
``STANDARD`` scale via :func:`repro.experiments.report.generate_experiments_report`.

The paper is a theory paper without numeric tables, so each experiment
validates a stated theorem or comparative claim; the mapping is documented in
DESIGN.md's experiment index and repeated in each definition's docstring.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro._util import as_generator, log2_safe, loglog2_safe
from repro.analysis.certificates import check_lower_bound, check_upper_bound
from repro.analysis.fitting import best_model
from repro.analysis.shape import who_wins
from repro.channel.adversary import AdaptiveLowerBoundAdversary
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.combinatorics.verification import monte_carlo_selectivity
from repro.core.lower_bounds import (
    randomized_lower_bound,
    scenario_ab_bound,
    scenario_c_bound,
    trivial_lower_bound,
)
from repro.core.round_robin import RoundRobin
from repro.core.scenario_a import WakeupWithS
from repro.core.scenario_b import WakeupWithK
from repro.core.scenario_c import WakeupProtocol
from repro.core.selective import (
    explicit_selective_family,
    random_selective_family,
    selective_family_target_length,
)
from repro.core.waking_matrix import first_isolation, matrix_parameters
from repro.experiments.campaign import (
    ExperimentDefinition,
    MeasurementSpec,
    ResolvedSpecs,
)
from repro.experiments.config import ExperimentScale, QUICK
from repro.experiments.runner import ExperimentResult
from repro.reporting.figures import ascii_line_plot, render_matrix_occupancy, render_trace
from repro.reporting.tables import TextTable

__all__ = [
    "BATTERY_SEED",
    "DEFINITIONS",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_e1_scenario_a",
    "experiment_e2_scenario_b",
    "experiment_e3_scenario_c",
    "experiment_e4_lower_bound",
    "experiment_e5_scenario_gap",
    "experiment_e6_randomized",
    "experiment_e7_matrix_structure",
    "experiment_e8_selective_families",
    "experiment_e9_baselines",
    "experiment_e10_ablations",
    "experiment_e11_global_vs_local_clock",
]


# ---------------------------------------------------------------------------
# Shared planning helpers
# ---------------------------------------------------------------------------


#: Seed every measurement spec carries.  One shared value — not the
#: per-experiment seed — so a grid cell demanded by several experiments is
#: one store record; workload streams are still decorrelated per workload
#: name by the suite's ``SeedSequence`` discipline, and the per-experiment
#: ``seed`` argument feeds only render-side randomness.
BATTERY_SEED = 0


def _spec(
    protocol: str,
    n: int,
    k: int,
    scale: ExperimentScale,
    workload: str,
    batch: int,
    params: Mapping[str, object] = (),
    *,
    protocol_params: Mapping[str, object] = (),
) -> MeasurementSpec:
    """One measurement spec at the campaign's shared seed and the scale's horizon."""
    return MeasurementSpec(
        protocol=protocol,
        n=n,
        k=k,
        workload=workload,
        batch=batch,
        seed=BATTERY_SEED,
        max_slots=scale.max_slots,
        params=params,
        protocol_params=protocol_params,
    )


def _battery(
    protocol: str,
    n: int,
    k: int,
    scale: ExperimentScale,
    *,
    window: int = 0,
    include_simultaneous: bool = True,
    include_staggered: bool = True,
    protocol_params: Mapping[str, object] = (),
) -> List[MeasurementSpec]:
    """The standard adversarial pattern battery of the scenario sweeps, as specs.

    Mirrors the historical pattern batch: the structured choice "the k
    stations with the latest round-robin turns" (simultaneous and one slot
    apart) — which prevents the interleaved round-robin arm from ending a
    run by luck — plus random simultaneous/staggered/uniform draws sized by
    the scale.  Each element is one config the store can memoize.
    """
    window = window or max(16, 4 * k)

    def spec(workload: str, batch: int, params: Mapping[str, object] = ()):
        return _spec(
            protocol, n, k, scale, workload, batch, params,
            protocol_params=protocol_params,
        )

    specs = [spec("late-turn", 1), spec("late-turn", 1, {"gap": 1})]
    if include_simultaneous:
        specs.append(spec("simultaneous", scale.seeds))
    if include_staggered:
        specs.append(spec("staggered", scale.seeds, {"gap": 1}))
    specs.append(
        spec("uniform", scale.seeds * scale.patterns_per_seed, {"window": window})
    )
    return specs


def _growth_fit_note(points: List[Tuple[int, int, float]], *, small_k: bool) -> str:
    """The best-model note E1/E2/E3 append, optionally on the k <= n/4 regime."""
    if small_k:
        # Beyond k ~ n/4 the interleaved round-robin arm takes over (the
        # paper's min{n-k+1, ...} regime) and no single monotone model
        # describes the whole sweep.
        restricted = [(n, k, y) for (n, k, y) in points if k <= n // 4]
        fit = best_model(restricted or points)
        return (
            f"best-fitting growth model on the k <= n/4 regime: {fit.model.name} "
            f"(constant {fit.constant:.2f}, residual {fit.residual:.3f})"
        )
    fit = best_model(points)
    return (
        f"best-fitting growth model: {fit.model.name} "
        f"(constant {fit.constant:.2f}, residual {fit.residual:.3f})"
    )


# ---------------------------------------------------------------------------
# E1 — Scenario A
# ---------------------------------------------------------------------------


def _e1_cells(scale: ExperimentScale):
    return [
        (n, k, _battery("scenario-a", n, k, scale))
        for n in scale.n_values
        for k in scale.k_values(n)
    ]


def _e1_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    return [spec for _, _, specs in _e1_cells(scale) for spec in specs]


def _e1_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E1",
        title="Scenario A (s known): wakeup_with_s is Θ(k log(n/k) + 1)",
        scale=scale.name,
    )
    table = TextTable(["n", "k", "worst latency", "k log(n/k)+1", "ratio"])
    points: List[Tuple[int, int, float]] = []
    for n, k, specs in _e1_cells(scale):
        latency = resolved.worst(*specs)
        bound = scenario_ab_bound(n, k)
        ratio = latency / bound
        table.add_row([n, k, latency, bound, ratio])
        points.append((n, k, float(max(1, latency))))
        result.rows.append(
            {
                "experiment": "E1",
                "protocol": "wakeup_with_s",
                "n": n,
                "k": k,
                "latency": latency,
                "bound": bound,
                "ratio": ratio,
            }
        )
    result.tables["scenario_a_latency"] = table.render()
    result.certificates.append(
        check_upper_bound(
            points,
            scenario_ab_bound,
            claim="wakeup_with_s latency = O(k log(n/k) + 1)",
            tolerance=48.0,
        )
    )
    result.notes.append(_growth_fit_note(points, small_k=True))
    return result


# ---------------------------------------------------------------------------
# E2 — Scenario B
# ---------------------------------------------------------------------------


def _e2_cells(scale: ExperimentScale):
    cells = []
    for n in scale.n_values:
        for k in scale.k_values(n):
            specs = _battery("scenario-b", n, k, scale)
            # The adversarial draw that wakes stations just after a
            # selective-family boundary — the worst case for wait_and_go.
            specs.append(
                _spec(
                    "scenario-b", n, k, scale, "family-boundary", 1,
                    {"protocol": "scenario-b", "proto_seed": BATTERY_SEED, "periods": 4},
                )
            )
            cells.append((n, k, specs))
    return cells


def _e2_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    return [spec for _, _, specs in _e2_cells(scale) for spec in specs]


def _e2_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E2",
        title="Scenario B (k known): wakeup_with_k is Θ(k log(n/k) + 1)",
        scale=scale.name,
    )
    table = TextTable(["n", "k", "worst latency", "k log(n/k)+1", "ratio"])
    points: List[Tuple[int, int, float]] = []
    for n, k, specs in _e2_cells(scale):
        latency = resolved.worst(*specs)
        bound = scenario_ab_bound(n, k)
        ratio = latency / bound
        table.add_row([n, k, latency, bound, ratio])
        points.append((n, k, float(max(1, latency))))
        result.rows.append(
            {
                "experiment": "E2",
                "protocol": "wakeup_with_k",
                "n": n,
                "k": k,
                "latency": latency,
                "bound": bound,
                "ratio": ratio,
            }
        )
    result.tables["scenario_b_latency"] = table.render()
    result.certificates.append(
        check_upper_bound(
            points,
            scenario_ab_bound,
            claim="wakeup_with_k latency = O(k log(n/k) + 1)",
            tolerance=64.0,
        )
    )
    result.notes.append(_growth_fit_note(points, small_k=True))
    return result


# ---------------------------------------------------------------------------
# E3 — Scenario C
# ---------------------------------------------------------------------------


def _e3_cells(scale: ExperimentScale):
    cells = []
    for n in scale.n_values:
        window = int(matrix_parameters(n).window)
        for k in scale.k_values(n, cap=min(n, 256)):
            specs = _battery("scenario-c", n, k, scale)
            # The window-boundary adversary: stations wake one slot after a
            # window starts, maximizing the forced idle time of µ.
            specs.append(
                _spec("scenario-c", n, k, scale, "window-boundary", 1, {"window": window})
            )
            cells.append((n, k, specs))
    return cells


def _e3_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    return [spec for _, _, specs in _e3_cells(scale) for spec in specs]


def _e3_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E3",
        title="Scenario C (nothing known): wakeup(n) is O(k log n log log n)",
        scale=scale.name,
    )
    table = TextTable(["n", "k", "worst latency", "k·logn·loglogn", "ratio"])
    points: List[Tuple[int, int, float]] = []
    for n, k, specs in _e3_cells(scale):
        latency = resolved.worst(*specs)
        bound = scenario_c_bound(n, k)
        ratio = latency / bound
        table.add_row([n, k, latency, bound, ratio])
        points.append((n, k, float(max(1, latency))))
        result.rows.append(
            {
                "experiment": "E3",
                "protocol": "wakeup_scenario_c",
                "n": n,
                "k": k,
                "latency": latency,
                "bound": bound,
                "ratio": ratio,
            }
        )
    result.tables["scenario_c_latency"] = table.render()
    result.certificates.append(
        check_upper_bound(
            points,
            scenario_c_bound,
            claim="wakeup(n) latency = O(k log n log log n)",
            tolerance=32.0,
        )
    )
    result.notes.append(_growth_fit_note(points, small_k=False))
    return result


# ---------------------------------------------------------------------------
# E4 — Lower bound
# ---------------------------------------------------------------------------


def _e4_cells(scale: ExperimentScale):
    n = scale.n_values[0]
    # Exact worst case for round-robin: wake (simultaneously) the k stations
    # whose turns come last, so the first k-1 ... n-k turns are wasted.
    return [
        (n, k, _spec("round-robin", n, k, scale, "late-turn", 1))
        for k in scale.k_values(n, cap=min(n - 1, 64))
    ]


def _e4_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    return [spec for _, _, spec in _e4_cells(scale)]


def _e4_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E4",
        title="Lower bound: any algorithm needs min{k, n-k+1} rounds",
        scale=scale.name,
    )
    table = TextTable(
        ["protocol", "n", "k", "adversary latency", "distinct slots", "min{k,n-k+1}"]
    )
    exact_points: List[Tuple[int, int, float]] = []
    for n, k, spec in _e4_cells(scale):
        families = cache.concatenation(n, k, seed=seed)
        protocols = {
            "round_robin": RoundRobin(n),
            "wakeup_with_s": WakeupWithS(n, s=0, families=cache.concatenation(n, n, seed=seed)),
            "wakeup_with_k": WakeupWithK(n, k, families=families),
            "wakeup_scenario_c": WakeupProtocol(n, seed=seed),
        }
        bound = trivial_lower_bound(n, k)
        for name, protocol in protocols.items():
            adversary = AdaptiveLowerBoundAdversary(protocol, max_slots=scale.max_slots)
            report = adversary.run(k, rng=rng)
            table.add_row(
                [name, n, k, report.max_latency, report.distinct_isolating_slots, bound]
            )
            result.rows.append(
                {
                    "experiment": "E4",
                    "protocol": name,
                    "n": n,
                    "k": k,
                    "adversary_latency": report.max_latency,
                    "distinct_slots": report.distinct_isolating_slots,
                    "bound": bound,
                }
            )
        exact = resolved.worst(spec)
        exact_points.append((n, k, float(exact + 1)))  # +1: latency t-s counts from 0
        result.rows.append(
            {
                "experiment": "E4",
                "protocol": "round_robin_exact_adversary",
                "n": n,
                "k": k,
                "adversary_latency": exact,
                "bound": trivial_lower_bound(n, k),
            }
        )
    result.tables["lower_bound_adversary"] = table.render()
    result.certificates.append(
        check_lower_bound(
            exact_points,
            trivial_lower_bound,
            claim="round-robin worst case >= min{k, n-k+1} (exact adversary)",
            tolerance=1.05,
        )
    )
    result.notes.append(
        "the replacement adversary is a heuristic realization of the Theorem 2.1 proof; "
        "its latencies are empirical floors, not exact worst cases"
    )
    return result


# ---------------------------------------------------------------------------
# E5 — Scenario gap
# ---------------------------------------------------------------------------

_E5_K = 8


def _e5_cells(scale: ExperimentScale):
    return [
        (
            n,
            _E5_K,
            {
                "a": _battery("scenario-a", n, _E5_K, scale),
                "b": _battery("scenario-b", n, _E5_K, scale),
                "c": _battery("scenario-c", n, _E5_K, scale),
            },
        )
        for n in scale.n_values
        if _E5_K <= n
    ]


def _e5_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    return [
        spec
        for _, _, batteries in _e5_cells(scale)
        for specs in batteries.values()
        for spec in specs
    ]


def _e5_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E5",
        title="Gap between Scenario C and Scenarios A/B",
        scale=scale.name,
    )
    table = TextTable(
        ["n", "k", "latency A", "latency B", "latency C", "gap C/A", "theory factor"]
    )
    ns, series_a, series_b, series_c = [], [], [], []
    for n, k, batteries in _e5_cells(scale):
        latency_a = resolved.worst(*batteries["a"])
        latency_b = resolved.worst(*batteries["b"])
        latency_c = resolved.worst(*batteries["c"])
        theory = (log2_safe(n) * loglog2_safe(n)) / log2_safe(n / k)
        table.add_row(
            [n, k, latency_a, latency_b, latency_c, latency_c / latency_a, theory]
        )
        ns.append(n)
        series_a.append(latency_a)
        series_b.append(latency_b)
        series_c.append(latency_c)
        result.rows.append(
            {
                "experiment": "E5",
                "n": n,
                "k": k,
                "latency_a": latency_a,
                "latency_b": latency_b,
                "latency_c": latency_c,
                "gap_c_over_a": latency_c / latency_a,
                "theory_factor": theory,
            }
        )
    result.tables["scenario_gap"] = table.render()
    if len(ns) >= 2:
        result.figures["latency_vs_n"] = ascii_line_plot(
            ns,
            {"scenario A": series_a, "scenario B": series_b, "scenario C": series_c},
            title=f"Worst-case latency vs n (k = {_E5_K})",
            logy=True,
        )
    gap_holds = all(c >= a for a, c in zip(series_a, series_c))
    result.notes.append(
        "scenario C never beats scenario A on worst-case latency: "
        + ("confirmed" if gap_holds else "NOT confirmed")
    )
    return result


# ---------------------------------------------------------------------------
# E6 — Randomized protocols
# ---------------------------------------------------------------------------

#: Policy keys and their sweep-registry names; the first group runs strict
#: (the paper's-model policies), the second capped at the horizon (the
#: feedback-driven baselines on the stronger collision-detection channel).
_E6_STRICT = (
    ("rpd_n", "rpd"),
    ("rpd_k", "rpd-known-k"),
    ("decay", "decay"),
    ("aloha", "aloha"),
)
_E6_CAPPED = (("beb", "beb"), ("tree", "tree-splitting"))


def _e6_cells(scale: ExperimentScale):
    repetitions = max(10, 5 * scale.seeds)
    cells = []
    for n in scale.n_values:
        for k in (2, 8, min(32, n)):
            params = {"window": max(4, 2 * k)}
            specs = {
                name: _spec(protocol, n, k, scale, "uniform", repetitions, params)
                for name, protocol in _E6_STRICT + _E6_CAPPED
            }
            cells.append((n, k, specs))
    return cells


def _e6_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    return [spec for _, _, specs in _e6_cells(scale) for spec in specs.values()]


def _e6_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E6",
        title="Randomized wake-up: RPD expected O(log n) / O(log k)",
        scale=scale.name,
    )
    table = TextTable(
        [
            "n",
            "k",
            "RPD (n)",
            "RPD (k known)",
            "Decay",
            "tuned ALOHA",
            "BEB",
            "tree split",
            "log2 n",
            "log2 k",
        ]
    )
    capped_names = {name for name, _ in _E6_CAPPED}
    rpd_known_points: List[Tuple[int, int, float]] = []
    rpd_unknown_points: List[Tuple[int, int, float]] = []
    for n, k, specs in _e6_cells(scale):
        means = {
            name: resolved.mean(spec, capped=name in capped_names)
            for name, spec in specs.items()
        }
        table.add_row(
            [
                n,
                k,
                means["rpd_n"],
                means["rpd_k"],
                means["decay"],
                means["aloha"],
                means["beb"],
                means["tree"],
                log2_safe(n),
                log2_safe(k),
            ]
        )
        rpd_unknown_points.append((n, k, max(1.0, means["rpd_n"])))
        rpd_known_points.append((n, k, max(1.0, means["rpd_k"])))
        result.rows.append(
            {
                "experiment": "E6",
                "n": n,
                "k": k,
                "rpd_mean": means["rpd_n"],
                "rpd_known_k_mean": means["rpd_k"],
                "decay_mean": means["decay"],
                "tuned_aloha_mean": means["aloha"],
                "beb_mean": means["beb"],
                "tree_splitting_mean": means["tree"],
                "log2_n": log2_safe(n),
                "log2_k": log2_safe(k),
            }
        )
    result.tables["randomized_expected_latency"] = table.render()
    result.notes.append(
        "beb and tree_splitting run on the collision-detection channel (stronger than "
        "the paper's model), resolved through the vectorized feedback engine"
    )
    result.certificates.append(
        check_upper_bound(
            rpd_unknown_points,
            lambda n, k: log2_safe(n),
            claim="RPD expected latency = O(log n) (k unknown)",
            tolerance=16.0,
        )
    )
    result.certificates.append(
        check_upper_bound(
            rpd_known_points,
            lambda n, k: log2_safe(k),
            claim="RPD expected latency = O(log k) (k known)",
            tolerance=16.0,
        )
    )
    result.certificates.append(
        check_lower_bound(
            rpd_known_points,
            lambda n, k: randomized_lower_bound(k),
            claim="expected latency >= Omega(log k) (Kushilevitz-Mansour shape)",
            tolerance=8.0,
        )
    )
    return result


# ---------------------------------------------------------------------------
# E7 — Matrix structure (paper Figures 1 and 2); render-only
# ---------------------------------------------------------------------------


def _render_only_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    return []


def _e7_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E7",
        title="Transmission-matrix structure (paper Figures 1 and 2)",
        scale=scale.name,
    )
    n = 32
    protocol = WakeupProtocol(n, seed=seed)
    params = protocol.params
    wake_times = {3: 1, 11: params.window + 1, 23: 2 * params.window + 1}
    result.figures["figure1_row_traversal"] = render_matrix_occupancy(
        params, wake_times, columns=72
    )
    pattern = WakeupPattern(n, wake_times)
    run = run_deterministic(protocol, pattern, max_slots=scale.max_slots, record_trace=True)
    if run.trace is not None:
        result.figures["figure2_column_alignment"] = render_trace(run.trace)
    isolation = first_isolation(protocol.matrix, pattern, max_slots=scale.max_slots)
    agreement = (
        isolation is not None
        and run.solved
        and isolation[0] == run.success_slot
        and isolation[1] == run.winner
    )
    result.notes.append(
        "protocol simulation and matrix-level isolation analysis agree on the first "
        f"success: {'yes' if agreement else 'NO'}"
    )
    result.rows.append(
        {
            "experiment": "E7",
            "n": n,
            "protocol_success_slot": run.success_slot,
            "protocol_winner": run.winner,
            "matrix_isolation_slot": isolation[0] if isolation else None,
            "matrix_isolated_station": isolation[1] if isolation else None,
            "agreement": agreement,
        }
    )

    # Empirical membership frequencies vs the prescribed 2^-(i+rho) probabilities.
    table = TextTable(["row i", "rho(j)", "empirical Pr[u in M_ij]", "2^-(i+rho)"])
    matrix = protocol.matrix
    columns = np.arange(0, min(params.length, 2048), dtype=np.int64)
    for row in range(1, min(params.rows, 4) + 1):
        for rho in range(params.window):
            cols = columns[(columns % params.window) == rho]
            if cols.size == 0:
                continue
            # One batched membership query over all n stations × columns of
            # this (row, rho) class — same hash cells, same frequencies as
            # the old per-station loop.
            member = matrix.membership_for_pairs(
                np.repeat(np.arange(1, n + 1, dtype=np.int64), cols.size),
                row,
                np.tile(cols, n),
            )
            hits = int(member.sum())
            total = int(member.size)
            empirical = hits / total if total else 0.0
            expected = 2.0 ** (-(row + rho))
            table.add_row([row, rho, empirical, expected])
            result.rows.append(
                {
                    "experiment": "E7",
                    "row": row,
                    "rho": rho,
                    "empirical_probability": empirical,
                    "expected_probability": expected,
                }
            )
    result.tables["membership_probabilities"] = table.render()
    return result


# ---------------------------------------------------------------------------
# E8 — Selective-family quality; render-only
# ---------------------------------------------------------------------------


def _e8_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E8",
        title="Selective families: length and selectivity of the constructions",
        scale=scale.name,
    )
    table = TextTable(
        [
            "n",
            "k",
            "target k·log(n/k)",
            "random length",
            "random selectivity",
            "explicit length",
        ]
    )
    for n in scale.n_values:
        for k in [2, 4, 8, 16]:
            if k > n:
                continue
            target = selective_family_target_length(n, k, multiplier=1.0)
            random_fam = random_selective_family(n, k, rng=rng)
            selectivity = monte_carlo_selectivity(
                random_fam.family, k, trials=200, rng=rng
            )
            explicit_length: Optional[int] = None
            if k <= 8:
                explicit_length = explicit_selective_family(n, k).length
            table.add_row(
                [n, k, target, random_fam.length, selectivity, explicit_length]
            )
            result.rows.append(
                {
                    "experiment": "E8",
                    "n": n,
                    "k": k,
                    "target_length": target,
                    "random_length": random_fam.length,
                    "random_selectivity": selectivity,
                    "explicit_length": explicit_length,
                }
            )
    result.tables["selective_family_quality"] = table.render()
    rates = [row["random_selectivity"] for row in result.rows if "random_selectivity" in row]
    result.notes.append(
        f"minimum Monte-Carlo selectivity rate of the randomized construction: {min(rates):.3f}"
    )
    return result


# ---------------------------------------------------------------------------
# E9 — Baseline comparison
# ---------------------------------------------------------------------------

#: Report keys and their sweep-registry protocol names, in table order.
_E9_PROTOCOLS = (
    ("wakeup_with_k", "scenario-b"),
    ("wakeup_scenario_c", "scenario-c"),
    ("tdma", "tdma"),
    ("komlos_greenberg", "komlos-greenberg"),
    ("rpd", "rpd"),
    ("tuned_aloha", "aloha"),
    ("beb", "beb"),
    ("tree_splitting", "tree-splitting"),
)
_E9_PATTERNS = (("simultaneous", "simultaneous", ()), ("staggered", "staggered", (("gap", 2),)))


def _e9_cells(scale: ExperimentScale):
    n = scale.n_values[-1]
    cells = []
    for k in scale.k_values(n, cap=min(n, 128)):
        for pattern_name, workload, params in _E9_PATTERNS:
            specs = {
                name: _spec(protocol, n, k, scale, workload, 1, params)
                for name, protocol in _E9_PROTOCOLS
            }
            cells.append((n, k, pattern_name, specs))
    return cells


def _e9_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    return [spec for _, _, _, specs in _e9_cells(scale) for spec in specs.values()]


def _e9_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E9",
        title="Baseline comparison on simultaneous and staggered wake-ups",
        scale=scale.name,
    )
    table = TextTable(["k", "pattern", "protocol", "latency", "winner?"])
    for n, k, pattern_name, specs in _e9_cells(scale):
        latencies: Dict[str, float] = {}
        for name, spec in specs.items():
            record = resolved[spec]
            solved = bool(record.columns["solved"][0])
            latency = int(record.columns["latency"][0]) if solved else scale.max_slots
            latencies[name] = latency
            result.rows.append(
                {
                    "experiment": "E9",
                    "n": n,
                    "k": k,
                    "pattern": pattern_name,
                    "protocol": name,
                    "latency": latency,
                    "solved": solved,
                }
            )
        winner, _ = who_wins(latencies)
        for name, latency in latencies.items():
            table.add_row([k, pattern_name, name, latency, name == winner])
    result.tables["baseline_comparison"] = table.render()
    result.notes.append(
        "beb and tree_splitting run on the collision-detection channel (stronger than the "
        "paper's model); rpd, tuned_aloha and beb are randomized — their latencies are "
        "single-run samples, not worst cases"
    )
    return result


# ---------------------------------------------------------------------------
# E10 — Ablations
# ---------------------------------------------------------------------------


def _e10_cells(scale: ExperimentScale):
    n = scale.n_values[0]
    k = max(2, min(16, n // 4))
    k_large = max(2, (3 * n) // 4)
    default_window = int(matrix_parameters(n).window)
    cells: Dict[str, list] = {
        "window_length": [],
        "constant_c": [],
        "waiting_rule": [],
        "interleaving": [],
    }
    # (a) window length: 1 vs the paper's default vs the row count.  The
    # default cell uses no protocol override, so it hash-dedups with the E3
    # battery at the same (n, k).
    for window in sorted({1, default_window, max(1, matrix_parameters(n).rows)}):
        overrides = () if window == default_window else (("window", window),)
        specs = _battery("scenario-c", n, k, scale, protocol_params=overrides)
        specs.append(
            _spec(
                "scenario-c", n, k, scale, "window-boundary", 1,
                {"window": max(1, window)}, protocol_params=overrides,
            )
        )
        cells["window_length"].append((window, specs))
    # (b) constant c: 1, 2 (the paper's default — again no override), 4.
    for c in (1, 2, 4):
        overrides = () if c == 2 else (("c", c),)
        cells["constant_c"].append(
            (
                (c, matrix_parameters(n, c=c).length),
                _battery("scenario-c", n, k, scale, protocol_params=overrides),
            )
        )
    # (c) waiting rule on family-boundary adversarial wake-ups: both
    # protocols measure the identical pattern batch (same workload config).
    boundary_params = {"protocol": "wait-and-go", "proto_seed": BATTERY_SEED, "periods": 2}
    boundary_batch = scale.seeds + scale.patterns_per_seed
    for name, protocol in (
        ("wait_and_go", "wait-and-go"),
        ("no_wait (Komlos-Greenberg)", "komlos-greenberg"),
    ):
        cells["waiting_rule"].append(
            (name, [_spec(protocol, n, k, scale, "family-boundary", boundary_batch, boundary_params)])
        )
    # (d) interleaving round-robin vs the selective arm alone, at large k.
    for name, protocol in (
        ("wakeup_with_s (interleaved)", "scenario-a"),
        ("select_among_the_first only", "select-first"),
    ):
        cells["interleaving"].append((name, _battery(protocol, n, k_large, scale)))
    return n, k, k_large, cells


def _e10_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    _, _, _, cells = _e10_cells(scale)
    return [
        spec
        for ablation_cells in cells.values()
        for _, specs in ablation_cells
        for spec in specs
    ]


def _e10_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E10",
        title="Ablations: window length, constant c, waiting rule, interleaving",
        scale=scale.name,
    )
    n, k, k_large, cells = _e10_cells(scale)

    table_a = TextTable(["window", "worst latency"])
    for window, specs in cells["window_length"]:
        latency = resolved.worst(*specs)
        table_a.add_row([window, latency])
        result.rows.append(
            {
                "experiment": "E10",
                "ablation": "window_length",
                "n": n,
                "k": k,
                "window": window,
                "latency": latency,
            }
        )
    result.tables["ablation_window_length"] = table_a.render()

    table_b = TextTable(["c", "worst latency", "matrix length"])
    for (c, matrix_length), specs in cells["constant_c"]:
        latency = resolved.worst(*specs)
        table_b.add_row([c, latency, matrix_length])
        result.rows.append(
            {
                "experiment": "E10",
                "ablation": "constant_c",
                "n": n,
                "k": k,
                "c": c,
                "latency": latency,
            }
        )
    result.tables["ablation_constant_c"] = table_b.render()

    table_c = TextTable(["protocol", "worst latency (boundary-adversarial wake-ups)"])
    for name, specs in cells["waiting_rule"]:
        latency = resolved.worst(*specs)
        table_c.add_row([name, latency])
        result.rows.append(
            {
                "experiment": "E10",
                "ablation": "waiting_rule",
                "n": n,
                "k": k,
                "protocol": name,
                "latency": latency,
            }
        )
    result.tables["ablation_waiting_rule"] = table_c.render()

    table_d = TextTable(["protocol", "k", "worst latency"])
    for name, specs in cells["interleaving"]:
        latency = resolved.worst(*specs)
        table_d.add_row([name, k_large, latency])
        result.rows.append(
            {
                "experiment": "E10",
                "ablation": "interleaving",
                "n": n,
                "k": k_large,
                "protocol": name,
                "latency": latency,
            }
        )
    result.tables["ablation_interleaving"] = table_d.render()
    return result


# ---------------------------------------------------------------------------
# E11 — Global vs local clock (extension; the paper's final open question)
# ---------------------------------------------------------------------------

_E11_VARIANTS = (
    ("global_b", "scenario-b"),
    ("local_b", "local-clock"),
    ("global_c", "scenario-c"),
    ("local_c", "local-clock-c"),
)


def _e11_cells(scale: ExperimentScale):
    n = scale.n_values[0]
    cells = []
    for k in scale.k_values(n, cap=min(n, 64)):
        specs = {
            variant: [
                _spec(protocol, n, k, scale, "late-turn", 1, {"gap": 1}),
                _spec(protocol, n, k, scale, "staggered", 1, {"gap": 3}),
                _spec(
                    protocol, n, k, scale, "uniform", scale.patterns_per_seed,
                    {"window": 4 * k},
                ),
            ]
            for variant, protocol in _E11_VARIANTS
        }
        cells.append((n, k, specs))
    return cells


def _e11_plan(scale: ExperimentScale) -> List[MeasurementSpec]:
    return [
        spec
        for _, _, variants in _e11_cells(scale)
        for specs in variants.values()
        for spec in specs
    ]


def _e11_render(
    resolved: ResolvedSpecs, scale: ExperimentScale, seed: int, cache
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="E11",
        title="Extension: global clock vs local clock",
        scale=scale.name,
    )
    table = TextTable(
        ["k", "wait_and_go (global)", "local-clock schedule", "scenario C (global)", "scenario C (local)"]
    )
    for n, k, variant_specs in _e11_cells(scale):
        # Unsolved patterns count as the horizon, exactly like the old
        # capped latency jobs; all four protocols are deterministic, so
        # sharding cannot change the numbers.
        latencies = {
            variant: resolved.worst(*specs, capped=True)
            for variant, specs in variant_specs.items()
        }
        table.add_row(
            [k, latencies["global_b"], latencies["local_b"], latencies["global_c"], latencies["local_c"]]
        )
        result.rows.append(
            {
                "experiment": "E11",
                "n": n,
                "k": k,
                "wait_and_go_global": latencies["global_b"],
                "local_clock_schedule": latencies["local_b"],
                "scenario_c_global": latencies["global_c"],
                "scenario_c_local": latencies["local_c"],
            }
        )
    result.tables["global_vs_local_clock"] = table.render()
    degradations = [
        row["local_clock_schedule"] / max(1, row["wait_and_go_global"]) for row in result.rows
    ]
    median_ratio = float(np.median(degradations))
    result.notes.append(
        "median latency ratio local/global for the selective-family schedules: "
        f"{median_ratio:.2f}x on this pattern battery"
    )
    result.notes.append(
        "the paper's conjectured local-clock penalty is a worst-case statement: sampled "
        "patterns rarely realize the shifted-schedule collisions that drive it, so a ratio "
        "near (or below) 1x here does not contradict the conjecture — it shows the gap is "
        "adversarial, not typical"
    )
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


#: The declarative registry: the campaign driver iterates these in order.
DEFINITIONS: Dict[str, ExperimentDefinition] = {
    "E1": ExperimentDefinition(
        "E1",
        title="Scenario A (s known): wakeup_with_s is Θ(k log(n/k) + 1)",
        plan=_e1_plan,
        render=_e1_render,
        default_seed=1,
    ),
    "E2": ExperimentDefinition(
        "E2",
        title="Scenario B (k known): wakeup_with_k is Θ(k log(n/k) + 1)",
        plan=_e2_plan,
        render=_e2_render,
        default_seed=2,
    ),
    "E3": ExperimentDefinition(
        "E3",
        title="Scenario C (nothing known): wakeup(n) is O(k log n log log n)",
        plan=_e3_plan,
        render=_e3_render,
        default_seed=3,
    ),
    "E4": ExperimentDefinition(
        "E4",
        title="Lower bound: any algorithm needs min{k, n-k+1} rounds",
        plan=_e4_plan,
        render=_e4_render,
        default_seed=4,
    ),
    "E5": ExperimentDefinition(
        "E5",
        title="Gap between Scenario C and Scenarios A/B",
        plan=_e5_plan,
        render=_e5_render,
        default_seed=5,
    ),
    "E6": ExperimentDefinition(
        "E6",
        title="Randomized wake-up: RPD expected O(log n) / O(log k)",
        plan=_e6_plan,
        render=_e6_render,
        default_seed=6,
    ),
    "E7": ExperimentDefinition(
        "E7",
        title="Transmission-matrix structure (paper Figures 1 and 2)",
        plan=_render_only_plan,
        render=_e7_render,
        default_seed=7,
    ),
    "E8": ExperimentDefinition(
        "E8",
        title="Selective families: length and selectivity of the constructions",
        plan=_render_only_plan,
        render=_e8_render,
        default_seed=8,
    ),
    "E9": ExperimentDefinition(
        "E9",
        title="Baseline comparison on simultaneous and staggered wake-ups",
        plan=_e9_plan,
        render=_e9_render,
        default_seed=9,
    ),
    "E10": ExperimentDefinition(
        "E10",
        title="Ablations: window length, constant c, waiting rule, interleaving",
        plan=_e10_plan,
        render=_e10_render,
        default_seed=10,
    ),
    "E11": ExperimentDefinition(
        "E11",
        title="Extension: global clock vs local clock",
        plan=_e11_plan,
        render=_e11_render,
        default_seed=11,
    ),
}


# -- historical callables ----------------------------------------------------
#
# The single-experiment entry points predate the plan/render split and are
# kept with their original signatures; each routes through its definition's
# ``run`` (plan → ephemeral resolve → render), so the campaign path and the
# direct path produce identical results by construction.


def experiment_e1_scenario_a(
    scale: ExperimentScale = QUICK, *, seed: int = 1, cache=None
) -> ExperimentResult:
    """E1: WAKEUP-WITH-S latency grows as Θ(k log(n/k) + 1) (paper Section 3).

    For each ``(n, k)`` the worst latency over the adversarial pattern
    battery (all with ``s = 0``, which Scenario A assumes known) is recorded
    and normalized by ``k log(n/k) + 1``.  The certificate asserts the
    normalized ratio is bounded by a fixed constant across the sweep, and the
    model fit confirms ``k log(n/k)`` explains the data better than the
    neighbouring candidates (``k``, ``k log n``).
    """
    return DEFINITIONS["E1"].run(scale, seed=seed, cache=cache)


def experiment_e2_scenario_b(
    scale: ExperimentScale = QUICK, *, seed: int = 2, cache=None
) -> ExperimentResult:
    """E2: WAKEUP-WITH-K latency grows as Θ(k log(n/k) + 1) (paper Section 4).

    Same sweep as E1, but the protocol only knows ``k`` (not ``s``) and the
    battery additionally contains the adversarial patterns that wake stations
    just after a selective-family boundary — the worst case for the
    ``wait_and_go`` waiting rule.
    """
    return DEFINITIONS["E2"].run(scale, seed=seed, cache=cache)


def experiment_e3_scenario_c(
    scale: ExperimentScale = QUICK, *, seed: int = 3
) -> ExperimentResult:
    """E3: WAKEUP(n) latency is O(k log n log log n) (paper Theorem 5.3).

    The battery includes the window-boundary adversary (stations wake one
    slot after a window starts, maximizing the forced idle time of µ).
    Measured worst latencies are normalized by ``k log n log log n``; the
    certificate asserts a uniform constant.
    """
    return DEFINITIONS["E3"].run(scale, seed=seed)


def experiment_e4_lower_bound(
    scale: ExperimentScale = QUICK, *, seed: int = 4, cache=None
) -> ExperimentResult:
    """E4: the replacement adversary forces ≥ min{k, n-k+1} rounds (Theorem 2.1).

    The adaptive adversary is run against every protocol in the library.  For
    round-robin the worst case is also constructed exactly (the ``k`` stations
    whose turns come last), giving a tight check; for the other protocols the
    heuristic adversary provides an empirical floor which is compared to the
    theoretical bound.
    """
    return DEFINITIONS["E4"].run(scale, seed=seed, cache=cache)


def experiment_e5_scenario_gap(
    scale: ExperimentScale = QUICK, *, seed: int = 5, cache=None
) -> ExperimentResult:
    """E5: the price of knowing nothing — Scenario C vs Scenarios A/B.

    For fixed ``k`` and growing ``n`` the measured gap
    ``latency_C / latency_A`` should track the theoretical factor
    ``log n log log n / log(n/k)`` (paper: Scenario C is a ``Θ(log log n)``
    factor away from optimal, and loses the ``log(n/k) → log n`` refinement).
    """
    return DEFINITIONS["E5"].run(scale, seed=seed, cache=cache)


def experiment_e6_randomized(
    scale: ExperimentScale = QUICK, *, seed: int = 6
) -> ExperimentResult:
    """E6: randomized protocols (Section 6) — RPD is O(log n), O(log k) with known k.

    Expected latencies (mean over repeated runs) of RPD with and without the
    knowledge of ``k``, of the Decay ablation, and of genie-tuned ALOHA are
    compared against ``log n`` and ``log k``, and against the
    Kushilevitz–Mansour ``Ω(log k)`` lower bound.  The classical
    feedback-driven baselines — binary exponential backoff and tree
    splitting, both resolved through the vectorized feedback engine on the
    collision-detection channel — ride along for comparison (capped at the
    horizon; they carry no certificate because they use a strictly stronger
    channel than the paper's model).
    """
    return DEFINITIONS["E6"].run(scale, seed=seed)


def experiment_e7_matrix_structure(
    scale: ExperimentScale = QUICK, *, seed: int = 7
) -> ExperimentResult:
    """E7: structural reproduction of the paper's Figures 1 and 2.

    Renders (a) which matrix rows a station traverses after waking (Figure 1)
    and (b) the per-slot timeline of a small execution where stations with
    different wake-up times transmit according to different rows of the same
    column (Figure 2).  Also validates that the protocol-level simulation and
    the matrix-level isolation analysis agree on the first success, and that
    the empirical membership frequencies match the prescribed probabilities
    ``2^-(i+ρ(j))``.
    """
    return DEFINITIONS["E7"].run(scale, seed=seed)


def experiment_e8_selective_families(
    scale: ExperimentScale = QUICK, *, seed: int = 8
) -> ExperimentResult:
    """E8: constructed selective-family lengths vs the O(k log(n/k)) target.

    Compares the randomized (existential-style) construction and the explicit
    Kautz–Singleton construction on length and verified selectivity, exposing
    the price of explicitness the paper's conclusion mentions ("an efficient
    implementation ... could require an explicit construction").
    """
    return DEFINITIONS["E8"].run(scale, seed=seed)


def experiment_e9_baselines(
    scale: ExperimentScale = QUICK, *, seed: int = 9, cache=None
) -> ExperimentResult:
    """E9: the paper's algorithms vs classical baselines (who wins where).

    Deterministic worst-case protocols are compared against TDMA, the
    synchronized Komlós–Greenberg schedule, tuned slotted ALOHA, binary
    exponential backoff and tree splitting, on simultaneous and staggered
    wake-ups.  Baselines that need collision detection or knowledge the
    paper's model does not provide are flagged in the notes.
    """
    return DEFINITIONS["E9"].run(scale, seed=seed, cache=cache)


def experiment_e10_ablations(
    scale: ExperimentScale = QUICK, *, seed: int = 10, cache=None
) -> ExperimentResult:
    """E10: ablations of the design choices DESIGN.md calls out.

    (a) Scenario C window length: 1 vs the paper's ``log log n`` vs ``log n``.
    (b) Scenario C constant ``c``: 1, 2, 4.
    (c) The ``wait_and_go`` waiting rule vs starting immediately
        (Komlós–Greenberg schedule) on family-boundary adversarial wake-ups.
    (d) Interleaving round-robin vs running the selective arm alone for
        ``k`` close to ``n``.
    """
    return DEFINITIONS["E10"].run(scale, seed=seed, cache=cache)


def experiment_e11_global_vs_local_clock(
    scale: ExperimentScale = QUICK, *, seed: int = 11, cache=None
) -> ExperimentResult:
    """E11 (extension): how much does the global clock buy?

    The paper's conclusions ask whether the global clock is necessary and
    conjecture the gap to locally synchronous solutions cannot be removed.
    This experiment runs the globally-clocked algorithms next to their
    locally-clocked counterparts (schedules indexed by each station's own
    wake-up-relative time) on staggered wake-ups — the regime where the
    clocks actually differ — and reports the latency ratio.
    """
    return DEFINITIONS["E11"].run(scale, seed=seed, cache=cache)


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": experiment_e1_scenario_a,
    "E2": experiment_e2_scenario_b,
    "E3": experiment_e3_scenario_c,
    "E4": experiment_e4_lower_bound,
    "E5": experiment_e5_scenario_gap,
    "E6": experiment_e6_randomized,
    "E7": experiment_e7_matrix_structure,
    "E8": experiment_e8_selective_families,
    "E9": experiment_e9_baselines,
    "E10": experiment_e10_ablations,
    "E11": experiment_e11_global_vs_local_clock,
}


def run_experiment(
    experiment_id: str, scale: ExperimentScale = QUICK, **kwargs
) -> ExperimentResult:
    """Run a single experiment by its ID (``"E1"`` ... ``"E11"``).

    Routes through the experiment's :class:`ExperimentDefinition`, so it
    accepts the definition's ``run`` keywords (``seed``, ``cache`` and also
    ``store``/``workers``/``backend`` for store-backed resolution).
    """
    try:
        definition = DEFINITIONS[experiment_id.upper()]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; valid IDs: {sorted(DEFINITIONS)}"
        ) from exc
    return definition.run(scale, **kwargs)
