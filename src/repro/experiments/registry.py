"""The experiment registry: E1–E11, each as a callable.

E1–E10 reproduce DESIGN.md's experiment index; E11 is the global-vs-local
clock extension (the paper's closing open question).

Every experiment function takes an :class:`~repro.experiments.config.ExperimentScale`
(and an optional seed) and returns an
:class:`~repro.experiments.runner.ExperimentResult`.  The benchmark files under
``benchmarks/`` call these with the ``QUICK`` scale; ``EXPERIMENTS.md`` is
generated from the ``STANDARD`` scale via
:func:`repro.experiments.report.generate_experiments_report`.

The paper is a theory paper without numeric tables, so each experiment
validates a stated theorem or comparative claim; the mapping is documented in
DESIGN.md's experiment index and repeated in each function's docstring.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro._util import as_generator, log2_safe, loglog2_safe
from repro.analysis.certificates import check_lower_bound, check_upper_bound
from repro.analysis.fitting import best_model
from repro.analysis.shape import who_wins
from repro.baselines import (
    BinaryExponentialBackoff,
    KomlosGreenberg,
    TDMA,
    TreeSplitting,
    tuned_aloha,
)
from repro.channel.adversary import (
    AdaptiveLowerBoundAdversary,
    family_boundary_pattern,
    window_boundary_pattern,
)
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.local_clock import LocalClockScenarioC, LocalClockWakeup
from repro.core.lower_bounds import (
    randomized_lower_bound,
    scenario_ab_bound,
    scenario_c_bound,
    trivial_lower_bound,
)
from repro.core.randomized import DecayPolicy, RepeatedProbabilityDecrease
from repro.core.round_robin import RoundRobin
from repro.core.scenario_a import SelectAmongTheFirst, WakeupWithS
from repro.core.scenario_b import WaitAndGo, WakeupWithK
from repro.core.scenario_c import WakeupProtocol
from repro.core.selective import (
    explicit_selective_family,
    random_selective_family,
    selective_family_target_length,
)
from repro.core.waking_matrix import (
    first_isolation,
    matrix_parameters,
)
from repro.combinatorics.verification import monte_carlo_selectivity
from repro.experiments.cache import FamilyCache, shared_cache
from repro.experiments.config import ExperimentScale, QUICK
from repro.experiments.runner import (
    ExperimentResult,
    capped_latencies,
    measure_latency,
    resolve_batch,
    sweep_latencies,
    worst_latency,
)
from repro.reporting.figures import ascii_line_plot, render_matrix_occupancy, render_trace
from repro.reporting.tables import TextTable
from repro.workloads import WorkloadSuite

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "experiment_e1_scenario_a",
    "experiment_e2_scenario_b",
    "experiment_e3_scenario_c",
    "experiment_e4_lower_bound",
    "experiment_e5_scenario_gap",
    "experiment_e6_randomized",
    "experiment_e7_matrix_structure",
    "experiment_e8_selective_families",
    "experiment_e9_baselines",
    "experiment_e10_ablations",
    "experiment_e11_global_vs_local_clock",
]


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


#: Lazily constructed view onto the workload registry: every pattern an
#: experiment samples is drawn through this suite, so pattern generation has
#: exactly one code path (shared with ``repro workloads`` and any plugin).
#: Built on first use, not at import time — constructing the default suite
#: scans ``repro.workloads`` entry points, which must not run as a side
#: effect of ``import repro``.
_suite_instance: Optional[WorkloadSuite] = None


def _suite() -> WorkloadSuite:
    global _suite_instance
    if _suite_instance is None:
        _suite_instance = WorkloadSuite()
    return _suite_instance


def _pattern_batch(
    n: int,
    k: int,
    scale: ExperimentScale,
    rng: np.random.Generator,
    *,
    start: int = 0,
    window: Optional[int] = None,
    include_simultaneous: bool = True,
    include_staggered: bool = True,
) -> List[WakeupPattern]:
    """The standard batch of wake-up patterns used by the scenario sweeps.

    All rows are drawn through :class:`repro.workloads.WorkloadSuite` — the
    same registry the CLI and campaigns sample from.  Besides random subsets,
    the batch always contains the structured adversarial choice "the k
    stations with the latest round-robin turns, all waking together": it
    prevents the interleaved round-robin arm from ending the run by luck, so
    the measured worst case reflects the selective-arm behaviour whose growth
    the experiments are about.
    """
    window = window or max(16, 4 * k)
    late_turn_stations = list(range(n - k + 1, n + 1))
    patterns: List[WakeupPattern] = [
        _suite().get("simultaneous").draw(n, k, start=start, stations=late_turn_stations),
        _suite().get("staggered").draw(n, k, start=start, gap=1, stations=late_turn_stations),
    ]
    if include_simultaneous:
        patterns += _suite().generate(
            "simultaneous", n=n, k=k, batch=scale.seeds, seed=rng, start=start
        )
    if include_staggered:
        patterns += _suite().generate(
            "staggered", n=n, k=k, batch=scale.seeds, seed=rng, gap=1, start=start
        )
    patterns += _suite().generate(
        "uniform",
        n=n,
        k=k,
        batch=scale.seeds * scale.patterns_per_seed,
        seed=rng,
        start=start,
        window=window,
    )
    return patterns


# ---------------------------------------------------------------------------
# E1 — Scenario A
# ---------------------------------------------------------------------------


def experiment_e1_scenario_a(
    scale: ExperimentScale = QUICK, *, seed: int = 1, cache: Optional[FamilyCache] = None
) -> ExperimentResult:
    """E1: WAKEUP-WITH-S latency grows as Θ(k log(n/k) + 1) (paper Section 3).

    For each ``(n, k)`` the worst latency over simultaneous, staggered and
    random wake-up patterns (all with ``s = 0``, which Scenario A assumes
    known) is recorded and normalized by ``k log(n/k) + 1``.  The certificate
    asserts the normalized ratio is bounded by a fixed constant across the
    sweep, and the model fit confirms ``k log(n/k)`` explains the data better
    than the neighbouring candidates (``k``, ``k log n``).
    """
    cache = cache or shared_cache
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E1",
        title="Scenario A (s known): wakeup_with_s is Θ(k log(n/k) + 1)",
        scale=scale.name,
    )
    table = TextTable(["n", "k", "worst latency", "k log(n/k)+1", "ratio"])
    points: List[Tuple[int, int, float]] = []
    for n in scale.n_values:
        families = cache.concatenation(n, n, seed=seed)
        for k in scale.k_values(n):
            protocol = WakeupWithS(n, s=0, families=families)
            patterns = _pattern_batch(n, k, scale, rng, start=0)
            latency = worst_latency(protocol, patterns, max_slots=scale.max_slots)
            bound = scenario_ab_bound(n, k)
            ratio = latency / bound
            table.add_row([n, k, latency, bound, ratio])
            points.append((n, k, float(max(1, latency))))
            result.rows.append(
                {
                    "experiment": "E1",
                    "protocol": "wakeup_with_s",
                    "n": n,
                    "k": k,
                    "latency": latency,
                    "bound": bound,
                    "ratio": ratio,
                }
            )
    result.tables["scenario_a_latency"] = table.render()
    result.certificates.append(
        check_upper_bound(
            points,
            scenario_ab_bound,
            claim="wakeup_with_s latency = O(k log(n/k) + 1)",
            tolerance=48.0,
        )
    )
    # The growth-model fit is restricted to k <= n/4: beyond that the interleaved
    # round-robin arm takes over (the paper's min{n-k+1, ...} regime) and no single
    # monotone model describes the whole sweep.
    small_k_points = [(n, k, y) for (n, k, y) in points if k <= n // 4]
    fit = best_model(small_k_points or points)
    result.notes.append(
        f"best-fitting growth model on the k <= n/4 regime: {fit.model.name} "
        f"(constant {fit.constant:.2f}, residual {fit.residual:.3f})"
    )
    return result


# ---------------------------------------------------------------------------
# E2 — Scenario B
# ---------------------------------------------------------------------------


def experiment_e2_scenario_b(
    scale: ExperimentScale = QUICK, *, seed: int = 2, cache: Optional[FamilyCache] = None
) -> ExperimentResult:
    """E2: WAKEUP-WITH-K latency grows as Θ(k log(n/k) + 1) (paper Section 4).

    Same sweep as E1, but the protocol only knows ``k`` (not ``s``) and the
    pattern batch additionally contains the adversarial patterns that wake
    stations just after a selective-family boundary — the worst case for the
    ``wait_and_go`` waiting rule.
    """
    cache = cache or shared_cache
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E2",
        title="Scenario B (k known): wakeup_with_k is Θ(k log(n/k) + 1)",
        scale=scale.name,
    )
    table = TextTable(["n", "k", "worst latency", "k log(n/k)+1", "ratio"])
    points: List[Tuple[int, int, float]] = []
    for n in scale.n_values:
        for k in scale.k_values(n):
            families = cache.concatenation(n, k, seed=seed)
            protocol = WakeupWithK(n, k, families=families)
            patterns = _pattern_batch(n, k, scale, rng)
            boundaries = protocol.family_boundaries_absolute(up_to=4 * protocol.wait_and_go_arm.period)
            if boundaries:
                patterns.append(
                    family_boundary_pattern(n, k, boundaries=boundaries, rng=rng)
                )
            latency = worst_latency(protocol, patterns, max_slots=scale.max_slots)
            bound = scenario_ab_bound(n, k)
            ratio = latency / bound
            table.add_row([n, k, latency, bound, ratio])
            points.append((n, k, float(max(1, latency))))
            result.rows.append(
                {
                    "experiment": "E2",
                    "protocol": "wakeup_with_k",
                    "n": n,
                    "k": k,
                    "latency": latency,
                    "bound": bound,
                    "ratio": ratio,
                }
            )
    result.tables["scenario_b_latency"] = table.render()
    result.certificates.append(
        check_upper_bound(
            points,
            scenario_ab_bound,
            claim="wakeup_with_k latency = O(k log(n/k) + 1)",
            tolerance=64.0,
        )
    )
    # See E1: fit only the k <= n/4 regime where the selective arm dominates.
    small_k_points = [(n, k, y) for (n, k, y) in points if k <= n // 4]
    fit = best_model(small_k_points or points)
    result.notes.append(
        f"best-fitting growth model on the k <= n/4 regime: {fit.model.name} "
        f"(constant {fit.constant:.2f}, residual {fit.residual:.3f})"
    )
    return result


# ---------------------------------------------------------------------------
# E3 — Scenario C
# ---------------------------------------------------------------------------


def experiment_e3_scenario_c(
    scale: ExperimentScale = QUICK, *, seed: int = 3
) -> ExperimentResult:
    """E3: WAKEUP(n) latency is O(k log n log log n) (paper Theorem 5.3).

    The wake-up patterns include the window-boundary adversary (stations wake
    one slot after a window starts, maximizing the forced idle time of µ) in
    addition to the standard batch.  Measured worst latencies are normalized
    by ``k log n log log n``; the certificate asserts a uniform constant.

    The (n, k) grid is measured in two phases: the patterns of every config
    are drawn first (in the serial generator order), then the per-config
    resolutions are sharded across ``scale.workers`` processes — identical
    numbers for any worker count.
    """
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E3",
        title="Scenario C (nothing known): wakeup(n) is O(k log n log log n)",
        scale=scale.name,
    )
    table = TextTable(["n", "k", "worst latency", "k·logn·loglogn", "ratio"])
    points: List[Tuple[int, int, float]] = []
    jobs, cells = [], []
    for n in scale.n_values:
        protocol = WakeupProtocol(n, seed=seed)
        k_cap = min(n, 256)
        for k in scale.k_values(n, cap=k_cap):
            patterns = _pattern_batch(n, k, scale, rng)
            patterns.append(
                window_boundary_pattern(
                    n, k, window_length=protocol.params.window, rng=rng
                )
            )
            jobs.append((protocol, patterns, scale.max_slots, False))
            cells.append((n, k))
    for (n, k), latency in zip(cells, sweep_latencies(jobs, workers=scale.workers)):
        bound = scenario_c_bound(n, k)
        ratio = latency / bound
        table.add_row([n, k, latency, bound, ratio])
        points.append((n, k, float(max(1, latency))))
        result.rows.append(
            {
                "experiment": "E3",
                "protocol": "wakeup_scenario_c",
                "n": n,
                "k": k,
                "latency": latency,
                "bound": bound,
                "ratio": ratio,
            }
        )
    result.tables["scenario_c_latency"] = table.render()
    result.certificates.append(
        check_upper_bound(
            points,
            scenario_c_bound,
            claim="wakeup(n) latency = O(k log n log log n)",
            tolerance=32.0,
        )
    )
    fit = best_model(points)
    result.notes.append(
        f"best-fitting growth model: {fit.model.name} "
        f"(constant {fit.constant:.2f}, residual {fit.residual:.3f})"
    )
    return result


# ---------------------------------------------------------------------------
# E4 — Lower bound
# ---------------------------------------------------------------------------


def experiment_e4_lower_bound(
    scale: ExperimentScale = QUICK, *, seed: int = 4, cache: Optional[FamilyCache] = None
) -> ExperimentResult:
    """E4: the replacement adversary forces ≥ min{k, n-k+1} rounds (Theorem 2.1).

    The adaptive adversary is run against every protocol in the library.  For
    round-robin the worst case is also constructed exactly (the ``k`` stations
    whose turns come last), giving a tight check; for the other protocols the
    heuristic adversary provides an empirical floor which is compared to the
    theoretical bound.
    """
    cache = cache or shared_cache
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E4",
        title="Lower bound: any algorithm needs min{k, n-k+1} rounds",
        scale=scale.name,
    )
    n = scale.n_values[0]
    table = TextTable(
        ["protocol", "n", "k", "adversary latency", "distinct slots", "min{k,n-k+1}"]
    )
    exact_points: List[Tuple[int, int, float]] = []
    for k in scale.k_values(n, cap=min(n - 1, 64)):
        families = cache.concatenation(n, k, seed=seed)
        protocols = {
            "round_robin": RoundRobin(n),
            "wakeup_with_s": WakeupWithS(n, s=0, families=cache.concatenation(n, n, seed=seed)),
            "wakeup_with_k": WakeupWithK(n, k, families=families),
            "wakeup_scenario_c": WakeupProtocol(n, seed=seed),
        }
        bound = trivial_lower_bound(n, k)
        for name, protocol in protocols.items():
            adversary = AdaptiveLowerBoundAdversary(protocol, max_slots=scale.max_slots)
            report = adversary.run(k, rng=rng)
            table.add_row(
                [name, n, k, report.max_latency, report.distinct_isolating_slots, bound]
            )
            result.rows.append(
                {
                    "experiment": "E4",
                    "protocol": name,
                    "n": n,
                    "k": k,
                    "adversary_latency": report.max_latency,
                    "distinct_slots": report.distinct_isolating_slots,
                    "bound": bound,
                }
            )
        # Exact worst case for round-robin: wake (simultaneously) the k stations
        # whose turns come last, so the first k-1... n-k turns are wasted.
        worst_stations = list(range(n - k + 1, n + 1))
        exact = run_deterministic(
            RoundRobin(n),
            _suite().get("simultaneous").draw(n, k, stations=worst_stations),
            max_slots=scale.max_slots,
        ).require_solved()
        exact_points.append((n, k, float(exact + 1)))  # +1: latency t-s counts from 0
        result.rows.append(
            {
                "experiment": "E4",
                "protocol": "round_robin_exact_adversary",
                "n": n,
                "k": k,
                "adversary_latency": exact,
                "bound": trivial_lower_bound(n, k),
            }
        )
    result.tables["lower_bound_adversary"] = table.render()
    result.certificates.append(
        check_lower_bound(
            exact_points,
            trivial_lower_bound,
            claim="round-robin worst case >= min{k, n-k+1} (exact adversary)",
            tolerance=1.05,
        )
    )
    result.notes.append(
        "the replacement adversary is a heuristic realization of the Theorem 2.1 proof; "
        "its latencies are empirical floors, not exact worst cases"
    )
    return result


# ---------------------------------------------------------------------------
# E5 — Scenario gap
# ---------------------------------------------------------------------------


def experiment_e5_scenario_gap(
    scale: ExperimentScale = QUICK, *, seed: int = 5, cache: Optional[FamilyCache] = None
) -> ExperimentResult:
    """E5: the price of knowing nothing — Scenario C vs Scenarios A/B.

    For fixed ``k`` and growing ``n`` the measured gap
    ``latency_C / latency_A`` should track the theoretical factor
    ``log n log log n / log(n/k)`` (paper: Scenario C is a ``Θ(log log n)``
    factor away from optimal, and loses the ``log(n/k) → log n`` refinement).
    """
    cache = cache or shared_cache
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E5",
        title="Gap between Scenario C and Scenarios A/B",
        scale=scale.name,
    )
    k = 8
    table = TextTable(
        ["n", "k", "latency A", "latency B", "latency C", "gap C/A", "theory factor"]
    )
    ns, series_a, series_b, series_c = [], [], [], []
    # Phase 1: draw every n's pattern batch and protocols (serial generator
    # order); phase 2: resolve the three scenario measurements per n across
    # scale.workers processes.
    jobs, grid_ns = [], []
    for n in scale.n_values:
        if k > n:
            continue
        patterns = _pattern_batch(n, k, scale, rng)
        for protocol in (
            WakeupWithS(n, s=0, families=cache.concatenation(n, n, seed=seed)),
            WakeupWithK(n, k, families=cache.concatenation(n, k, seed=seed)),
            WakeupProtocol(n, seed=seed),
        ):
            jobs.append((protocol, patterns, scale.max_slots, False))
        grid_ns.append(n)
    latencies = sweep_latencies(jobs, workers=scale.workers)
    for position, n in enumerate(grid_ns):
        latency_a, latency_b, latency_c = latencies[3 * position : 3 * position + 3]
        theory = (log2_safe(n) * loglog2_safe(n)) / log2_safe(n / k)
        table.add_row(
            [n, k, latency_a, latency_b, latency_c, latency_c / latency_a, theory]
        )
        ns.append(n)
        series_a.append(latency_a)
        series_b.append(latency_b)
        series_c.append(latency_c)
        result.rows.append(
            {
                "experiment": "E5",
                "n": n,
                "k": k,
                "latency_a": latency_a,
                "latency_b": latency_b,
                "latency_c": latency_c,
                "gap_c_over_a": latency_c / latency_a,
                "theory_factor": theory,
            }
        )
    result.tables["scenario_gap"] = table.render()
    if len(ns) >= 2:
        result.figures["latency_vs_n"] = ascii_line_plot(
            ns,
            {"scenario A": series_a, "scenario B": series_b, "scenario C": series_c},
            title=f"Worst-case latency vs n (k = {k})",
            logy=True,
        )
    gap_holds = all(c >= a for a, c in zip(series_a, series_c))
    result.notes.append(
        "scenario C never beats scenario A on worst-case latency: "
        + ("confirmed" if gap_holds else "NOT confirmed")
    )
    return result


# ---------------------------------------------------------------------------
# E6 — Randomized protocols
# ---------------------------------------------------------------------------


def experiment_e6_randomized(
    scale: ExperimentScale = QUICK, *, seed: int = 6
) -> ExperimentResult:
    """E6: randomized protocols (Section 6) — RPD is O(log n), O(log k) with known k.

    Expected latencies (mean over repeated runs) of RPD with and without the
    knowledge of ``k``, of the Decay ablation, and of genie-tuned ALOHA are
    compared against ``log n`` and ``log k``, and against the
    Kushilevitz–Mansour ``Ω(log k)`` lower bound.  The classical
    feedback-driven baselines — binary exponential backoff and tree
    splitting, both resolved through the vectorized feedback engine on the
    collision-detection channel — ride along for comparison (capped at the
    horizon; they carry no certificate because they use a strictly stronger
    channel than the paper's model).
    """
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E6",
        title="Randomized wake-up: RPD expected O(log n) / O(log k)",
        scale=scale.name,
    )
    repetitions = max(10, 5 * scale.seeds)
    table = TextTable(
        [
            "n",
            "k",
            "RPD (n)",
            "RPD (k known)",
            "Decay",
            "tuned ALOHA",
            "BEB",
            "tree split",
            "log2 n",
            "log2 k",
        ]
    )
    rpd_known_points: List[Tuple[int, int, float]] = []
    rpd_unknown_points: List[Tuple[int, int, float]] = []
    for n in scale.n_values:
        for k in (2, 8, min(32, n)):
            patterns = _suite().generate(
                "uniform", n=n, k=k, batch=repetitions, seed=rng, window=max(4, 2 * k)
            )
            means = {}
            for name, policy in (
                ("rpd_n", RepeatedProbabilityDecrease(n)),
                ("rpd_k", RepeatedProbabilityDecrease(n, k=k)),
                ("decay", DecayPolicy(n)),
                ("aloha", tuned_aloha(n, k)),
            ):
                latencies = measure_latency(
                    policy, patterns, max_slots=scale.max_slots, rng=rng
                )
                means[name] = float(np.mean(latencies))
            for name, policy in (
                ("beb", BinaryExponentialBackoff(n)),
                ("tree", TreeSplitting(n)),
            ):
                # Feedback-driven baselines: capped so a pathological run
                # records the horizon instead of aborting the table.
                latencies = capped_latencies(
                    policy, patterns, max_slots=scale.max_slots, rng=rng
                )
                means[name] = float(np.mean(latencies))
            table.add_row(
                [
                    n,
                    k,
                    means["rpd_n"],
                    means["rpd_k"],
                    means["decay"],
                    means["aloha"],
                    means["beb"],
                    means["tree"],
                    log2_safe(n),
                    log2_safe(k),
                ]
            )
            rpd_unknown_points.append((n, k, max(1.0, means["rpd_n"])))
            rpd_known_points.append((n, k, max(1.0, means["rpd_k"])))
            result.rows.append(
                {
                    "experiment": "E6",
                    "n": n,
                    "k": k,
                    "rpd_mean": means["rpd_n"],
                    "rpd_known_k_mean": means["rpd_k"],
                    "decay_mean": means["decay"],
                    "tuned_aloha_mean": means["aloha"],
                    "beb_mean": means["beb"],
                    "tree_splitting_mean": means["tree"],
                    "log2_n": log2_safe(n),
                    "log2_k": log2_safe(k),
                }
            )
    result.tables["randomized_expected_latency"] = table.render()
    result.notes.append(
        "beb and tree_splitting run on the collision-detection channel (stronger than "
        "the paper's model), resolved through the vectorized feedback engine"
    )
    result.certificates.append(
        check_upper_bound(
            rpd_unknown_points,
            lambda n, k: log2_safe(n),
            claim="RPD expected latency = O(log n) (k unknown)",
            tolerance=16.0,
        )
    )
    result.certificates.append(
        check_upper_bound(
            rpd_known_points,
            lambda n, k: log2_safe(k),
            claim="RPD expected latency = O(log k) (k known)",
            tolerance=16.0,
        )
    )
    result.certificates.append(
        check_lower_bound(
            rpd_known_points,
            lambda n, k: randomized_lower_bound(k),
            claim="expected latency >= Omega(log k) (Kushilevitz-Mansour shape)",
            tolerance=8.0,
        )
    )
    return result


# ---------------------------------------------------------------------------
# E7 — Matrix structure (paper Figures 1 and 2)
# ---------------------------------------------------------------------------


def experiment_e7_matrix_structure(
    scale: ExperimentScale = QUICK, *, seed: int = 7
) -> ExperimentResult:
    """E7: structural reproduction of the paper's Figures 1 and 2.

    Renders (a) which matrix rows a station traverses after waking (Figure 1)
    and (b) the per-slot timeline of a small execution where stations with
    different wake-up times transmit according to different rows of the same
    column (Figure 2).  Also validates that the protocol-level simulation and
    the matrix-level isolation analysis agree on the first success, and that
    the empirical membership frequencies match the prescribed probabilities
    ``2^-(i+ρ(j))``.
    """
    result = ExperimentResult(
        experiment="E7",
        title="Transmission-matrix structure (paper Figures 1 and 2)",
        scale=scale.name,
    )
    n = 32
    protocol = WakeupProtocol(n, seed=seed)
    params = protocol.params
    wake_times = {3: 1, 11: params.window + 1, 23: 2 * params.window + 1}
    result.figures["figure1_row_traversal"] = render_matrix_occupancy(
        params, wake_times, columns=72
    )
    pattern = WakeupPattern(n, wake_times)
    run = run_deterministic(protocol, pattern, max_slots=scale.max_slots, record_trace=True)
    if run.trace is not None:
        result.figures["figure2_column_alignment"] = render_trace(run.trace)
    isolation = first_isolation(protocol.matrix, pattern, max_slots=scale.max_slots)
    agreement = (
        isolation is not None
        and run.solved
        and isolation[0] == run.success_slot
        and isolation[1] == run.winner
    )
    result.notes.append(
        "protocol simulation and matrix-level isolation analysis agree on the first "
        f"success: {'yes' if agreement else 'NO'}"
    )
    result.rows.append(
        {
            "experiment": "E7",
            "n": n,
            "protocol_success_slot": run.success_slot,
            "protocol_winner": run.winner,
            "matrix_isolation_slot": isolation[0] if isolation else None,
            "matrix_isolated_station": isolation[1] if isolation else None,
            "agreement": agreement,
        }
    )

    # Empirical membership frequencies vs the prescribed 2^-(i+rho) probabilities.
    table = TextTable(["row i", "rho(j)", "empirical Pr[u in M_ij]", "2^-(i+rho)"])
    matrix = protocol.matrix
    columns = np.arange(0, min(params.length, 2048), dtype=np.int64)
    for row in range(1, min(params.rows, 4) + 1):
        for rho in range(params.window):
            cols = columns[(columns % params.window) == rho]
            if cols.size == 0:
                continue
            # One batched membership query over all n stations × columns of
            # this (row, rho) class — same hash cells, same frequencies as
            # the old per-station loop.
            member = matrix.membership_for_pairs(
                np.repeat(np.arange(1, n + 1, dtype=np.int64), cols.size),
                row,
                np.tile(cols, n),
            )
            hits = int(member.sum())
            total = int(member.size)
            empirical = hits / total if total else 0.0
            expected = 2.0 ** (-(row + rho))
            table.add_row([row, rho, empirical, expected])
            result.rows.append(
                {
                    "experiment": "E7",
                    "row": row,
                    "rho": rho,
                    "empirical_probability": empirical,
                    "expected_probability": expected,
                }
            )
    result.tables["membership_probabilities"] = table.render()
    return result


# ---------------------------------------------------------------------------
# E8 — Selective-family quality
# ---------------------------------------------------------------------------


def experiment_e8_selective_families(
    scale: ExperimentScale = QUICK, *, seed: int = 8
) -> ExperimentResult:
    """E8: constructed selective-family lengths vs the O(k log(n/k)) target.

    Compares the randomized (existential-style) construction and the explicit
    Kautz–Singleton construction on length and verified selectivity, exposing
    the price of explicitness the paper's conclusion mentions ("an efficient
    implementation ... could require an explicit construction").
    """
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E8",
        title="Selective families: length and selectivity of the constructions",
        scale=scale.name,
    )
    table = TextTable(
        [
            "n",
            "k",
            "target k·log(n/k)",
            "random length",
            "random selectivity",
            "explicit length",
        ]
    )
    for n in scale.n_values:
        for k in [2, 4, 8, 16]:
            if k > n:
                continue
            target = selective_family_target_length(n, k, multiplier=1.0)
            random_fam = random_selective_family(n, k, rng=rng)
            selectivity = monte_carlo_selectivity(
                random_fam.family, k, trials=200, rng=rng
            )
            explicit_length: Optional[int] = None
            if k <= 8:
                explicit_length = explicit_selective_family(n, k).length
            table.add_row(
                [n, k, target, random_fam.length, selectivity, explicit_length]
            )
            result.rows.append(
                {
                    "experiment": "E8",
                    "n": n,
                    "k": k,
                    "target_length": target,
                    "random_length": random_fam.length,
                    "random_selectivity": selectivity,
                    "explicit_length": explicit_length,
                }
            )
    result.tables["selective_family_quality"] = table.render()
    rates = [row["random_selectivity"] for row in result.rows if "random_selectivity" in row]
    result.notes.append(
        f"minimum Monte-Carlo selectivity rate of the randomized construction: {min(rates):.3f}"
    )
    return result


# ---------------------------------------------------------------------------
# E9 — Baseline comparison
# ---------------------------------------------------------------------------


def experiment_e9_baselines(
    scale: ExperimentScale = QUICK, *, seed: int = 9, cache: Optional[FamilyCache] = None
) -> ExperimentResult:
    """E9: the paper's algorithms vs classical baselines (who wins where).

    Deterministic worst-case protocols are compared against TDMA, the
    synchronized Komlós–Greenberg schedule, tuned slotted ALOHA, binary
    exponential backoff and tree splitting, on simultaneous and staggered
    wake-ups.  Baselines that need collision detection or knowledge the
    paper's model does not provide are flagged in the notes.
    """
    cache = cache or shared_cache
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E9",
        title="Baseline comparison on simultaneous and staggered wake-ups",
        scale=scale.name,
    )
    n = scale.n_values[-1]
    table = TextTable(["k", "pattern", "protocol", "latency", "winner?"])
    for k in scale.k_values(n, cap=min(n, 128)):
        families = cache.concatenation(n, k, seed=seed)
        protocols = {
            "wakeup_with_k": WakeupWithK(n, k, families=families),
            "wakeup_scenario_c": WakeupProtocol(n, seed=seed),
            "tdma": TDMA(n),
            "komlos_greenberg": KomlosGreenberg(n, k, families=families),
            "rpd": RepeatedProbabilityDecrease(n),
            "tuned_aloha": tuned_aloha(n, k),
            "beb": BinaryExponentialBackoff(n, rng=seed),
            "tree_splitting": TreeSplitting(n, rng=seed),
        }
        for pattern_name, pattern in (
            ("simultaneous", _suite().get("simultaneous").draw(n, k, rng=rng)),
            ("staggered", _suite().get("staggered").draw(n, k, gap=2, rng=rng)),
        ):
            latencies: Dict[str, float] = {}
            for name, protocol in protocols.items():
                outcome = resolve_batch(
                    protocol, [pattern], max_slots=scale.max_slots, rng=rng
                )[0]
                solved = outcome.solved
                latency = outcome.latency if solved else scale.max_slots
                latencies[name] = latency
                result.rows.append(
                    {
                        "experiment": "E9",
                        "n": n,
                        "k": k,
                        "pattern": pattern_name,
                        "protocol": name,
                        "latency": latency,
                        "solved": solved,
                    }
                )
            winner, _ = who_wins(latencies)
            for name, latency in latencies.items():
                table.add_row([k, pattern_name, name, latency, name == winner])
    result.tables["baseline_comparison"] = table.render()
    result.notes.append(
        "beb and tree_splitting run on the collision-detection channel (stronger than the "
        "paper's model); rpd, tuned_aloha and beb are randomized — their latencies are "
        "single-run samples, not worst cases"
    )
    return result


# ---------------------------------------------------------------------------
# E10 — Ablations
# ---------------------------------------------------------------------------


def experiment_e10_ablations(
    scale: ExperimentScale = QUICK, *, seed: int = 10, cache: Optional[FamilyCache] = None
) -> ExperimentResult:
    """E10: ablations of the design choices DESIGN.md calls out.

    (a) Scenario C window length: 1 vs the paper's ``log log n`` vs ``log n``.
    (b) Scenario C constant ``c``: 1, 2, 4.
    (c) The ``wait_and_go`` waiting rule vs starting immediately
        (Komlós–Greenberg schedule) on family-boundary adversarial wake-ups.
    (d) Interleaving round-robin vs running the selective arm alone for
        ``k`` close to ``n``.
    """
    cache = cache or shared_cache
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E10",
        title="Ablations: window length, constant c, waiting rule, interleaving",
        scale=scale.name,
    )
    n = scale.n_values[0]
    k = max(2, min(16, n // 4))
    patterns = _pattern_batch(n, k, scale, rng)

    # Phase 1: draw every ablation's patterns and protocols in the serial
    # generator order, collecting one latency job per table cell; phase 2:
    # resolve the whole battery across scale.workers processes at once.
    jobs, cells = [], []

    # (a) window length
    default_window = matrix_parameters(n).window
    for window in sorted({1, default_window, max(1, matrix_parameters(n).rows)}):
        protocol = WakeupProtocol(n, window=window, seed=seed)
        window_patterns = patterns + [
            window_boundary_pattern(n, k, window_length=max(1, window), rng=rng)
        ]
        jobs.append((protocol, window_patterns, scale.max_slots, False))
        cells.append(("window_length", window))

    # (b) constant c
    for c in (1, 2, 4):
        protocol = WakeupProtocol(n, c=c, seed=seed)
        jobs.append((protocol, patterns, scale.max_slots, False))
        cells.append(("constant_c", (c, protocol.params.length)))

    # (c) waiting rule
    families = cache.concatenation(n, k, seed=seed)
    wait_and_go = WaitAndGo(n, k, families=families)
    no_wait = KomlosGreenberg(n, k, families=families)
    boundaries = wait_and_go.boundary_slots(up_to=2 * wait_and_go.period)
    adversarial = [
        family_boundary_pattern(n, k, boundaries=boundaries, rng=rng)
        for _ in range(scale.seeds + scale.patterns_per_seed)
    ]
    for name, protocol in (("wait_and_go", wait_and_go), ("no_wait (Komlos-Greenberg)", no_wait)):
        jobs.append((protocol, adversarial, scale.max_slots, False))
        cells.append(("waiting_rule", name))

    # (d) interleaving
    k_large = max(2, (3 * n) // 4)
    large_patterns = _pattern_batch(n, k_large, scale, rng)
    with_interleave = WakeupWithS(n, s=0, families=cache.concatenation(n, n, seed=seed))
    without_interleave = SelectAmongTheFirst(n, 0, cache.concatenation(n, n, seed=seed))
    for name, protocol in (
        ("wakeup_with_s (interleaved)", with_interleave),
        ("select_among_the_first only", without_interleave),
    ):
        jobs.append((protocol, large_patterns, scale.max_slots, False))
        cells.append(("interleaving", name))

    latencies = dict(zip(cells, sweep_latencies(jobs, workers=scale.workers)))

    table_a = TextTable(["window", "worst latency"])
    for ablation, window in cells:
        if ablation != "window_length":
            continue
        latency = latencies[(ablation, window)]
        table_a.add_row([window, latency])
        result.rows.append(
            {
                "experiment": "E10",
                "ablation": "window_length",
                "n": n,
                "k": k,
                "window": window,
                "latency": latency,
            }
        )
    result.tables["ablation_window_length"] = table_a.render()

    table_b = TextTable(["c", "worst latency", "matrix length"])
    for ablation, cell in cells:
        if ablation != "constant_c":
            continue
        c, matrix_length = cell
        latency = latencies[(ablation, cell)]
        table_b.add_row([c, latency, matrix_length])
        result.rows.append(
            {
                "experiment": "E10",
                "ablation": "constant_c",
                "n": n,
                "k": k,
                "c": c,
                "latency": latency,
            }
        )
    result.tables["ablation_constant_c"] = table_b.render()

    table_c = TextTable(["protocol", "worst latency (boundary-adversarial wake-ups)"])
    for ablation, name in cells:
        if ablation != "waiting_rule":
            continue
        latency = latencies[(ablation, name)]
        table_c.add_row([name, latency])
        result.rows.append(
            {
                "experiment": "E10",
                "ablation": "waiting_rule",
                "n": n,
                "k": k,
                "protocol": name,
                "latency": latency,
            }
        )
    result.tables["ablation_waiting_rule"] = table_c.render()

    table_d = TextTable(["protocol", "k", "worst latency"])
    for ablation, name in cells:
        if ablation != "interleaving":
            continue
        latency = latencies[(ablation, name)]
        table_d.add_row([name, k_large, latency])
        result.rows.append(
            {
                "experiment": "E10",
                "ablation": "interleaving",
                "n": n,
                "k": k_large,
                "protocol": name,
                "latency": latency,
            }
        )
    result.tables["ablation_interleaving"] = table_d.render()
    return result


# ---------------------------------------------------------------------------
# E11 — Global vs local clock (extension; the paper's final open question)
# ---------------------------------------------------------------------------


def experiment_e11_global_vs_local_clock(
    scale: ExperimentScale = QUICK, *, seed: int = 11, cache: Optional[FamilyCache] = None
) -> ExperimentResult:
    """E11 (extension): how much does the global clock buy?

    The paper's conclusions ask whether the global clock is necessary and
    conjecture the gap to locally synchronous solutions cannot be removed.
    This experiment runs the globally-clocked algorithms next to their
    locally-clocked counterparts (schedules indexed by each station's own
    wake-up-relative time) on staggered wake-ups — the regime where the
    clocks actually differ — and reports the latency ratio.
    """
    cache = cache or shared_cache
    rng = as_generator(seed)
    result = ExperimentResult(
        experiment="E11",
        title="Extension: global clock vs local clock",
        scale=scale.name,
    )
    n = scale.n_values[0]
    table = TextTable(
        ["k", "wait_and_go (global)", "local-clock schedule", "scenario C (global)", "scenario C (local)"]
    )
    # Phase 1: draw every k's pattern battery and the four clock variants
    # (serial generator order); phase 2: resolve the whole grid across
    # scale.workers processes.  Unsolved rows count as the horizon, exactly
    # like the old per-pattern loop (capped jobs); all four protocols are
    # deterministic, so sharding cannot change the numbers.
    variants = ("global_b", "local_b", "global_c", "local_c")
    jobs, grid_ks = [], []
    for k in scale.k_values(n, cap=min(n, 64)):
        families = cache.concatenation(n, k, seed=seed)
        patterns = [
            _suite().get("staggered").draw(n, k, gap=1, stations=list(range(n - k + 1, n + 1))),
            _suite().get("staggered").draw(n, k, gap=3, rng=rng),
        ]
        patterns += _suite().generate(
            "uniform", n=n, k=k, batch=scale.patterns_per_seed, seed=rng, window=4 * k
        )
        for protocol in (
            WakeupWithK(n, k, families=families),
            LocalClockWakeup(n, k, families=families),
            WakeupProtocol(n, seed=seed),
            LocalClockScenarioC(n, seed=seed),
        ):
            jobs.append((protocol, patterns, scale.max_slots, True))
        grid_ks.append(k)
    resolved = sweep_latencies(jobs, workers=scale.workers)
    for position, k in enumerate(grid_ks):
        latencies = dict(zip(variants, resolved[4 * position : 4 * position + 4]))
        table.add_row(
            [k, latencies["global_b"], latencies["local_b"], latencies["global_c"], latencies["local_c"]]
        )
        result.rows.append(
            {
                "experiment": "E11",
                "n": n,
                "k": k,
                "wait_and_go_global": latencies["global_b"],
                "local_clock_schedule": latencies["local_b"],
                "scenario_c_global": latencies["global_c"],
                "scenario_c_local": latencies["local_c"],
            }
        )
    result.tables["global_vs_local_clock"] = table.render()
    degradations = [
        row["local_clock_schedule"] / max(1, row["wait_and_go_global"]) for row in result.rows
    ]
    median_ratio = float(np.median(degradations))
    result.notes.append(
        "median latency ratio local/global for the selective-family schedules: "
        f"{median_ratio:.2f}x on this pattern battery"
    )
    result.notes.append(
        "the paper's conjectured local-clock penalty is a worst-case statement: sampled "
        "patterns rarely realize the shifted-schedule collisions that drive it, so a ratio "
        "near (or below) 1x here does not contradict the conjecture — it shows the gap is "
        "adversarial, not typical"
    )
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": experiment_e1_scenario_a,
    "E2": experiment_e2_scenario_b,
    "E3": experiment_e3_scenario_c,
    "E4": experiment_e4_lower_bound,
    "E5": experiment_e5_scenario_gap,
    "E6": experiment_e6_randomized,
    "E7": experiment_e7_matrix_structure,
    "E8": experiment_e8_selective_families,
    "E9": experiment_e9_baselines,
    "E10": experiment_e10_ablations,
    "E11": experiment_e11_global_vs_local_clock,
}


def run_experiment(
    experiment_id: str, scale: ExperimentScale = QUICK, **kwargs
) -> ExperimentResult:
    """Run a single experiment by its ID (``"E1"`` ... ``"E10"``)."""
    try:
        func = EXPERIMENTS[experiment_id.upper()]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; valid IDs: {sorted(EXPERIMENTS)}"
        ) from exc
    return func(scale, **kwargs)
