"""Shared internal utilities for the :mod:`repro` package.

This module collects small helpers used throughout the library:

* integer math used by the paper's bounds (``log2`` variants that are safe at
  the boundary values the paper glosses over with "we omit floors/ceilings"),
* validation helpers that convert user errors into clear exceptions,
* deterministic random-generator plumbing (every stochastic construction in
  the library takes a seed or an ``numpy.random.Generator`` so results are
  reproducible bit-for-bit).

Nothing in here is part of the public API; the public surface re-exports only
what is documented in :mod:`repro`.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Union

import numpy as np

__all__ = [
    "RngLike",
    "as_generator",
    "ceil_log2",
    "floor_log2",
    "ceil_div",
    "log2_safe",
    "loglog2_safe",
    "validate_station_id",
    "validate_station_ids",
    "validate_positive_int",
    "validate_k_n",
    "ensure_sorted_unique",
]

#: Anything acceptable as a source of randomness: ``None`` (fresh entropy),
#: an integer seed, or an already-constructed :class:`numpy.random.Generator`.
RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed for reproducible streams, or
        an existing generator (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def ceil_log2(x: int) -> int:
    """Return ``ceil(log2(x))`` for a positive integer ``x``.

    ``ceil_log2(1) == 0``.  Raises :class:`ValueError` for ``x < 1``.
    """
    if x < 1:
        raise ValueError(f"ceil_log2 requires x >= 1, got {x}")
    return (x - 1).bit_length()


def floor_log2(x: int) -> int:
    """Return ``floor(log2(x))`` for a positive integer ``x``."""
    if x < 1:
        raise ValueError(f"floor_log2 requires x >= 1, got {x}")
    return x.bit_length() - 1


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for ``b > 0``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)


def log2_safe(x: float) -> float:
    """``log2(x)`` clamped to be at least 1.

    The paper's bounds use expressions such as ``k log(n/k)`` that collapse to
    zero at ``k == n``; following the paper's convention (``Θ(k log(n/k)+1)``)
    we never let the logarithmic factor drop below 1 so that bound formulas
    stay positive and comparable.
    """
    if x <= 1.0:
        return 1.0
    return math.log2(x)


def loglog2_safe(x: float) -> float:
    """``log2(log2(x))`` clamped to be at least 1 (see :func:`log2_safe`)."""
    return log2_safe(log2_safe(x))


def validate_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive ``int`` and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def validate_station_id(station: int, n: int) -> int:
    """Validate a station ID against the universe ``[1, n]``.

    The paper indexes stations ``1..n``; the library follows that convention
    everywhere in the public API (internal arrays are 0-based).
    """
    if not isinstance(station, (int, np.integer)) or isinstance(station, bool):
        raise TypeError(f"station ID must be an integer, got {type(station).__name__}")
    station = int(station)
    if not 1 <= station <= n:
        raise ValueError(f"station ID must be in [1, {n}], got {station}")
    return station


def validate_station_ids(stations: Iterable[int], n: int) -> list[int]:
    """Validate a collection of station IDs, returning them as a list."""
    out = [validate_station_id(s, n) for s in stations]
    if len(set(out)) != len(out):
        raise ValueError("station IDs must be distinct")
    return out


def validate_k_n(k: int, n: int) -> tuple[int, int]:
    """Validate the pair ``(k, n)`` with ``1 <= k <= n``."""
    n = validate_positive_int(n, "n")
    k = validate_positive_int(k, "k")
    if k > n:
        raise ValueError(f"k must satisfy 1 <= k <= n, got k={k}, n={n}")
    return k, n


def ensure_sorted_unique(values: Sequence[int], name: str = "values") -> list[int]:
    """Return a sorted list of distinct integers, validating uniqueness."""
    out = sorted(int(v) for v in values)
    for a, b in zip(out, out[1:]):
        if a == b:
            raise ValueError(f"{name} must be distinct; {a} appears more than once")
    return out
