"""Shared internal utilities for the :mod:`repro` package.

This module collects small helpers used throughout the library:

* integer math used by the paper's bounds (``log2`` variants that are safe at
  the boundary values the paper glosses over with "we omit floors/ceilings"),
* validation helpers that convert user errors into clear exceptions,
* deterministic random-generator plumbing (every stochastic construction in
  the library takes a seed or an ``numpy.random.Generator`` so results are
  reproducible bit-for-bit).

Seed-derivation convention
--------------------------

Whenever one seed has to fan out into several independent streams — batch
shards in :mod:`repro.engine`, per-pattern draws in :mod:`repro.workloads`,
worker processes in a :class:`~repro.engine.Campaign` — child generators MUST
be derived with :meth:`numpy.random.SeedSequence.spawn` (wrapped here as
:func:`spawn_generators` / :func:`derived_generator`), never with ad-hoc
integer offsets such as ``seed + i``.  Offset seeds produce correlated
streams (neighbouring seeds of the same bit-generator share state-setup
structure) and collide across call sites (two loops both using ``seed + i``
reuse each other's streams); ``SeedSequence`` hashes the parent entropy with
the spawn key, which guarantees independence and gives every derivation site
its own namespace.

Nothing in here is part of the public API; the public surface re-exports only
what is documented in :mod:`repro`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Union

import numpy as np

__all__ = [
    "RngLike",
    "as_generator",
    "spawn_generators",
    "derived_generator",
    "stable_key",
    "ragged_arange",
    "MAX_CELLS_PER_CHUNK",
    "ceil_log2",
    "floor_log2",
    "ceil_div",
    "log2_safe",
    "loglog2_safe",
    "validate_station_id",
    "validate_station_ids",
    "validate_positive_int",
    "validate_k_n",
    "ensure_sorted_unique",
]

#: Anything acceptable as a source of randomness: ``None`` (fresh entropy),
#: an integer seed, or an already-constructed :class:`numpy.random.Generator`.
RngLike = Union[None, int, np.random.Generator]


def as_generator(rng: RngLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed for reproducible streams, or
        an existing generator (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def stable_key(name: str) -> int:
    """Map a string to a stable non-negative integer usable as seed entropy.

    Python's built-in ``hash`` is salted per process, so it cannot be used to
    derive reproducible seeds from workload names; this uses SHA-256 instead.
    """
    import hashlib

    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_generators(seed: RngLike, count: int, *keys: Union[int, str]) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    This is the library's only sanctioned way to fan a seed out into multiple
    streams (see the module docstring): it builds a
    :class:`numpy.random.SeedSequence` from ``seed`` and the optional
    namespace ``keys`` (strings are hashed with :func:`stable_key`) and calls
    :meth:`~numpy.random.SeedSequence.spawn`.  Passing a ``Generator`` draws a
    fresh 64-bit parent seed from it, so generator-valued seeds stay usable.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    entropy: list[int] = [stable_key(k) if isinstance(k, str) else int(k) for k in keys]
    if isinstance(seed, np.random.Generator):
        parent = int(seed.integers(0, 2**63))
    elif seed is None:
        # Match as_generator(None): an unseeded spawn draws fresh OS entropy
        # (namespace keys alone must not make the streams deterministic).
        parent = np.random.SeedSequence().entropy
    else:
        parent = seed
    sequence = np.random.SeedSequence([int(parent)] + entropy)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derived_generator(seed: RngLike, *keys: Union[int, str]) -> np.random.Generator:
    """Derive one child generator from ``seed`` namespaced by ``keys``.

    Equivalent to ``spawn_generators(seed, 1, *keys)[0]``; use it when a call
    site needs a single independent stream (e.g. the pattern draw for shard
    ``i`` of workload ``"heavy-tailed"``).
    """
    return spawn_generators(seed, 1, *keys)[0]


#: Cap on the cells (pairs × slots, or rows × slots) a vectorized chunked
#: scan materializes at once — bounds the transient working set of the batch
#: engine's bincount scans and of the matrix-geometry enumerations in
#: :mod:`repro.core.waking_matrix`, which must agree on the budget.
MAX_CELLS_PER_CHUNK = 1 << 22


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange`` per row: ``[0..c0), [0..c1), ...`` flattened.

    The building block for vectorized ragged expansion: paired with
    ``np.repeat(values, counts)`` it enumerates, without a Python loop, the
    ``j``-th element of every variable-length run.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    run_starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - run_starts


def ceil_log2(x: int) -> int:
    """Return ``ceil(log2(x))`` for a positive integer ``x``.

    ``ceil_log2(1) == 0``.  Raises :class:`ValueError` for ``x < 1``.
    """
    if x < 1:
        raise ValueError(f"ceil_log2 requires x >= 1, got {x}")
    return (x - 1).bit_length()


def floor_log2(x: int) -> int:
    """Return ``floor(log2(x))`` for a positive integer ``x``."""
    if x < 1:
        raise ValueError(f"floor_log2 requires x >= 1, got {x}")
    return x.bit_length() - 1


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for ``b > 0``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)


def log2_safe(x: float) -> float:
    """``log2(x)`` clamped to be at least 1.

    The paper's bounds use expressions such as ``k log(n/k)`` that collapse to
    zero at ``k == n``; following the paper's convention (``Θ(k log(n/k)+1)``)
    we never let the logarithmic factor drop below 1 so that bound formulas
    stay positive and comparable.
    """
    if x <= 1.0:
        return 1.0
    return math.log2(x)


def loglog2_safe(x: float) -> float:
    """``log2(log2(x))`` clamped to be at least 1 (see :func:`log2_safe`)."""
    return log2_safe(log2_safe(x))


def validate_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive ``int`` and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def validate_station_id(station: int, n: int) -> int:
    """Validate a station ID against the universe ``[1, n]``.

    The paper indexes stations ``1..n``; the library follows that convention
    everywhere in the public API (internal arrays are 0-based).
    """
    if not isinstance(station, (int, np.integer)) or isinstance(station, bool):
        raise TypeError(f"station ID must be an integer, got {type(station).__name__}")
    station = int(station)
    if not 1 <= station <= n:
        raise ValueError(f"station ID must be in [1, {n}], got {station}")
    return station


def validate_station_ids(stations: Iterable[int], n: int) -> list[int]:
    """Validate a collection of station IDs, returning them as a list."""
    out = [validate_station_id(s, n) for s in stations]
    if len(set(out)) != len(out):
        raise ValueError("station IDs must be distinct")
    return out


def validate_k_n(k: int, n: int) -> tuple[int, int]:
    """Validate the pair ``(k, n)`` with ``1 <= k <= n``."""
    n = validate_positive_int(n, "n")
    k = validate_positive_int(k, "k")
    if k > n:
        raise ValueError(f"k must satisfy 1 <= k <= n, got k={k}, n={n}")
    return k, n


def ensure_sorted_unique(values: Sequence[int], name: str = "values") -> list[int]:
    """Return a sorted list of distinct integers, validating uniqueness."""
    out = sorted(int(v) for v in values)
    for a, b in zip(out, out[1:]):
        if a == b:
            raise ValueError(f"{name} must be distinct; {a} appears more than once")
    return out
