"""Sweep specifications: config grids as plain, hashable data.

A :class:`SweepSpec` describes a whole experiment campaign as the Cartesian
product of axes — protocols × universe sizes × contender budgets × workloads ×
seeds — and expands it into an ordered list of :class:`SweepConfig` records.
Each config is pure data (strings and integers only), which buys three things
at once:

* it crosses process boundaries cheaply (the sweep runner ships configs, not
  protocol objects, to its workers);
* it serializes to JSON, so a spec is a file a user can edit and re-run
  (``repro sweep run --spec grid.json``);
* it hashes stably — :meth:`SweepConfig.config_hash` is a SHA-256 digest of
  the canonical JSON form — so an on-disk result store can key records by
  config and recognize already-computed work across interpreter sessions.

The grid expansion order is deterministic (protocol, then n, then k, then
workload, then seed) and combinations with ``k > n`` are skipped, mirroring
the ``k <= n`` constraint every experiment sweep applies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

__all__ = ["SweepConfig", "SweepSpec", "powers_of_two_up_to"]

#: Extra workload parameters, stored as a sorted tuple of (key, value) pairs
#: so configs stay hashable and their canonical JSON form is order-free.
ParamItems = Tuple[Tuple[str, object], ...]


def _freeze_params(params: Optional[Mapping[str, object]]) -> ParamItems:
    items = tuple(sorted((str(k), v) for k, v in dict(params or {}).items()))
    for _, value in items:
        if not isinstance(value, (int, float, str, bool)):
            raise TypeError(
                f"workload parameters must be JSON scalars, got {type(value).__name__}"
            )
    return items


@dataclass(frozen=True)
class SweepConfig:
    """One fully-specified simulation configuration of a sweep.

    Attributes
    ----------
    protocol:
        Name in :data:`repro.sweeps.protocols.PROTOCOL_BUILDERS`.
    n, k:
        Universe size and contender budget.
    workload:
        Name in the workload registry (see :mod:`repro.workloads`).
    batch:
        Number of patterns the config resolves.
    seed:
        Base seed; it alone determines the patterns (via the workload suite's
        ``SeedSequence`` discipline) and, for randomized policies, the
        per-pattern generators — never any shared mutable stream, which is
        what makes sweep results worker-count invariant.
    max_slots:
        Simulation horizon per pattern.
    params:
        Extra workload parameters as sorted ``(key, value)`` pairs.
    protocol_params:
        Extra protocol-construction parameters as sorted ``(key, value)``
        pairs, forwarded to the protocol builder (e.g. ``window``/``c`` for
        ``scenario-c`` ablations).  Empty for the default construction — and
        omitted from the canonical JSON form when empty, so configs without
        overrides keep their historical hashes (and their store records).
    """

    protocol: str
    n: int
    k: int
    workload: str = "uniform"
    batch: int = 64
    seed: int = 0
    max_slots: int = 200_000
    params: ParamItems = ()
    protocol_params: ParamItems = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_params(dict(self.params)))
        object.__setattr__(
            self, "protocol_params", _freeze_params(dict(self.protocol_params))
        )
        if self.n < 1 or self.k < 1 or self.k > self.n:
            raise ValueError(f"need 1 <= k <= n, got k={self.k}, n={self.n}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.max_slots < 1:
            raise ValueError(f"max_slots must be >= 1, got {self.max_slots}")

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-ready; ``params`` becomes a dict).

        ``protocol_params`` appears only when non-empty: the default
        construction keeps the exact canonical form (and hash) it had before
        the field existed, so pre-existing stores stay valid.
        """
        out: Dict[str, object] = {
            "protocol": self.protocol,
            "n": self.n,
            "k": self.k,
            "workload": self.workload,
            "batch": self.batch,
            "seed": self.seed,
            "max_slots": self.max_slots,
            "params": dict(self.params),
        }
        if self.protocol_params:
            out["protocol_params"] = dict(self.protocol_params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepConfig":
        """Inverse of :meth:`as_dict`."""
        known = dict(data)
        params = known.pop("params", {})
        protocol_params = known.pop("protocol_params", {})
        return cls(
            params=_freeze_params(params),
            protocol_params=_freeze_params(protocol_params),
            **known,
        )

    def config_hash(self) -> str:
        """Stable 16-hex-digit key for the on-disk result store.

        The hash covers every field through the canonical (sorted-keys) JSON
        form of :meth:`as_dict`, so two configs share a key iff they describe
        the same computation — across processes, sessions and platforms.
        """
        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        """Short human-readable identifier used in tables and progress lines."""
        protocol = self.protocol
        if self.protocol_params:
            overrides = ",".join(f"{k}={v}" for k, v in self.protocol_params)
            protocol = f"{protocol}[{overrides}]"
        return (
            f"{protocol} n={self.n} k={self.k} "
            f"{self.workload} x{self.batch} seed={self.seed}"
        )


def powers_of_two_up_to(n: int) -> List[int]:
    """The default ``k`` axis: powers of two up to ``n`` (``[1]`` for n=1).

    Shared by the grid expansion and the CLI's ``sweep worst-case`` action so
    an omitted ``k_values`` means the same sweep everywhere.
    """
    ks, k = [], 2
    while k <= n:
        ks.append(k)
        k *= 2
    return ks or [1]


@dataclass(frozen=True)
class SweepSpec:
    """A config grid: the Cartesian product of sweep axes.

    ``k_values=None`` (the default) uses the powers of two up to each ``n`` —
    the ``k`` sweep every E-series experiment walks.  Combinations with
    ``k > n`` are skipped.

    Examples
    --------
    >>> spec = SweepSpec(protocols=("round-robin",), n_values=(16,), k_values=(4,))
    >>> [c.label() for c in spec.configs()]
    ['round-robin n=16 k=4 uniform x64 seed=0']
    """

    protocols: Tuple[str, ...] = ("scenario-b",)
    n_values: Tuple[int, ...] = (256,)
    k_values: Optional[Tuple[int, ...]] = None
    workloads: Tuple[str, ...] = ("uniform",)
    seeds: Tuple[int, ...] = (0,)
    batch: int = 64
    max_slots: int = 200_000
    params: ParamItems = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "n_values", tuple(int(n) for n in self.n_values))
        if self.k_values is not None:
            object.__setattr__(self, "k_values", tuple(int(k) for k in self.k_values))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "params", _freeze_params(dict(self.params)))
        for name, values in (
            ("protocols", self.protocols),
            ("n_values", self.n_values),
            ("workloads", self.workloads),
            ("seeds", self.seeds),
        ):
            if not values:
                raise ValueError(f"spec axis {name!r} must be non-empty")
        if self.k_values is not None and not self.k_values:
            raise ValueError("spec axis 'k_values' must be non-empty (or None)")

    # -- grid expansion ------------------------------------------------------

    def configs(self) -> List[SweepConfig]:
        """Expand the grid in deterministic (protocol, n, k, workload, seed) order."""
        out: List[SweepConfig] = []
        for protocol in self.protocols:
            for n in self.n_values:
                ks = self.k_values if self.k_values is not None else powers_of_two_up_to(n)
                for k in ks:
                    if k > n:
                        continue
                    for workload in self.workloads:
                        for seed in self.seeds:
                            out.append(
                                SweepConfig(
                                    protocol=protocol,
                                    n=n,
                                    k=k,
                                    workload=workload,
                                    batch=self.batch,
                                    seed=seed,
                                    max_slots=self.max_slots,
                                    params=self.params,
                                )
                            )
        if not out:
            raise ValueError("spec expands to an empty grid (every k exceeded its n)")
        return out

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-ready)."""
        return {
            "protocols": list(self.protocols),
            "n_values": list(self.n_values),
            "k_values": None if self.k_values is None else list(self.k_values),
            "workloads": list(self.workloads),
            "seeds": list(self.seeds),
            "batch": self.batch,
            "max_slots": self.max_slots,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Inverse of :meth:`as_dict` (missing keys take the defaults)."""
        known = dict(data)
        params = known.pop("params", {})
        k_values = known.pop("k_values", None)
        return cls(
            params=_freeze_params(params),
            k_values=None if k_values is None else tuple(k_values),
            **known,
        )

    def to_json(self, *, indent: int = 2) -> str:
        """Serialize the spec to a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a spec from a JSON string."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as JSON to ``path`` and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepSpec":
        """Read a spec previously written with :meth:`save` (or by hand)."""
        return cls.from_json(Path(path).read_text())
