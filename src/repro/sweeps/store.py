"""On-disk sweep results: one JSON record per config, keyed by config hash.

The store is what makes sweeps *resumable*: every resolved config is written
as ``<config_hash>.json`` under the store root the moment it completes, so an
interrupted sweep loses at most the configs that were in flight, and a re-run
(or a larger sweep sharing configs with an earlier one) skips everything
already on disk.  Records carry the full per-pattern outcome columns — not
just summary statistics — so a resumed sweep returns results bit-for-bit
identical to an uninterrupted serial run, and a stored record can be lifted
back into a :class:`~repro.engine.BatchResult` for further analysis.

Concurrency contract
--------------------

The store has no locks; its coordination primitive is the atomic
single-file write.  Every :meth:`SweepStore.save` (and
:meth:`SweepStore.save_blob`) writes to a writer-unique temp file in the
destination directory and publishes it with :func:`os.replace` — atomic on
POSIX and NTFS alike — which gives three guarantees that multiple processes
sharing one store (sweep workers, the paper campaign, the
:mod:`repro.service` daemon, an overlapping ``repro sweep run``) rely on:

* **no torn reads** — a reader observes either the previous intact record
  or the new intact record, never a partial write; a crash mid-write leaves
  only a stray ``*.tmp`` file, never a truncated record;
* **last writer wins** — two writers racing on the same config hash both
  land intact records and the later :func:`os.replace` silently replaces
  the earlier one.  This is safe *by construction of the key*: records are
  keyed by the config's content hash and resolution is deterministic in the
  config content alone, so racing writers are writing byte-identical
  payloads and it cannot matter which one survives
  (``tests/sweeps/test_sweep_store.py`` holds the same-content tolerance
  test);
* **read-modify-write is not provided** — records and blobs are replaced
  whole.  Drivers that need cross-record state (campaign manifests,
  adversary checkpoints) keep it in writer-owned blobs instead of mutating
  shared ones.

Record files are versioned: every record carries a ``schema`` field and
:func:`load_record` is the single gate that lifts on-disk JSON back into a
:class:`ConfigRecord` — it migrates records from known older layouts (the
pre-schema ``version: 1`` form) and rejects anything newer or malformed with
a :class:`StoreSchemaError` naming the file and the expected schema, instead
of lifting arbitrary JSON into a :class:`~repro.engine.BatchResult` silently.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.engine import BatchResult
from repro.sweeps.spec import SweepConfig

__all__ = ["ConfigRecord", "SweepStore", "StoreSchemaError", "load_record"]

#: Columns persisted per config (aligned, one entry per pattern).
_COLUMNS = ("solved", "k", "first_wake", "success_slot", "winner", "latency", "slots_examined")

#: Schema version stamped into every record file (as the ``schema`` field).
#: Schema 1 records predate the field and carry ``version: 1`` instead;
#: :func:`load_record` still reads them (the payload layout is identical).
_SCHEMA = 2


class StoreSchemaError(ValueError):
    """A store record could not be lifted into a :class:`ConfigRecord`.

    Raised for records written by a newer schema than this code understands,
    for files that are not valid record JSON at all, and for records missing
    required fields — always with the offending file named in the message so
    a user can delete or regenerate it.
    """


@dataclass(frozen=True)
class ConfigRecord:
    """One resolved config: its identity plus the full outcome columns.

    Attributes
    ----------
    config:
        The :class:`~repro.sweeps.spec.SweepConfig` that was resolved.
    protocol_label:
        ``protocol.describe()`` of the protocol instance that ran.
    columns:
        Per-pattern outcome columns as plain lists (see
        :class:`~repro.engine.BatchResult` for their meaning).
    summary:
        ``BatchResult.summary()`` statistics of the batch.
    """

    config: SweepConfig
    protocol_label: str
    columns: Dict[str, list]
    summary: Dict[str, float]

    @classmethod
    def from_batch(cls, config: SweepConfig, batch: BatchResult) -> "ConfigRecord":
        """Build a record from a freshly resolved :class:`BatchResult`."""
        return cls(
            config=config,
            protocol_label=batch.protocol,
            columns={name: getattr(batch, name).tolist() for name in _COLUMNS},
            summary=batch.summary(),
        )

    def to_batch_result(self) -> BatchResult:
        """Reconstruct the :class:`BatchResult` the record was built from."""
        return BatchResult(
            protocol=self.protocol_label,
            n=self.config.n,
            solved=np.asarray(self.columns["solved"], dtype=bool),
            k=np.asarray(self.columns["k"], dtype=np.int64),
            first_wake=np.asarray(self.columns["first_wake"], dtype=np.int64),
            success_slot=np.asarray(self.columns["success_slot"], dtype=np.int64),
            winner=np.asarray(self.columns["winner"], dtype=np.int64),
            latency=np.asarray(self.columns["latency"], dtype=np.int64),
            slots_examined=np.asarray(self.columns["slots_examined"], dtype=np.int64),
        )

    @property
    def all_solved(self) -> bool:
        """True iff every pattern of the config solved within the horizon."""
        return all(self.columns["solved"])

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form written to disk."""
        return {
            "schema": _SCHEMA,
            "hash": self.config.config_hash(),
            "config": self.config.as_dict(),
            "protocol_label": self.protocol_label,
            "columns": self.columns,
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ConfigRecord":
        """Inverse of :meth:`as_dict`."""
        return cls(
            config=SweepConfig.from_dict(data["config"]),
            protocol_label=data["protocol_label"],
            columns={name: list(data["columns"][name]) for name in _COLUMNS},
            summary=dict(data["summary"]),
        )

    def row(self) -> Dict[str, object]:
        """Flat config+summary dict for CSV/JSON export (one row per config)."""
        out = self.config.as_dict()
        # Flatten the params mapping into one readable column so rows that
        # differ only in workload parameters stay distinguishable in a CSV.
        out["params"] = ",".join(f"{k}={v}" for k, v in sorted(out["params"].items()))
        out["hash"] = self.config.config_hash()
        out.update(self.summary)
        return out


def load_record(data: Dict[str, object], *, source: str = "<record>") -> ConfigRecord:
    """Lift one on-disk record dict into a :class:`ConfigRecord`, versioned.

    Accepts the current ``schema: 2`` layout and migrates the pre-schema
    ``version: 1`` layout (identical payload, different version field).
    Anything else — an unknown or newer schema, a record missing its
    version marker, a payload missing required fields — raises
    :class:`StoreSchemaError` naming ``source`` so stale or foreign files
    never masquerade as results.
    """
    if not isinstance(data, dict):
        raise StoreSchemaError(f"{source}: record is not a JSON object")
    schema = data.get("schema", None)
    if schema is None and data.get("version") == 1:
        schema = _SCHEMA  # legacy layout: same payload, pre-rename version field
    if schema is None:
        raise StoreSchemaError(
            f"{source}: record has no schema marker (expected schema={_SCHEMA})"
        )
    if schema != _SCHEMA:
        raise StoreSchemaError(
            f"{source}: record schema {schema!r} is not supported "
            f"(this build reads schema {_SCHEMA}); delete or regenerate it"
        )
    try:
        return ConfigRecord.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreSchemaError(f"{source}: malformed record ({exc})") from exc


class SweepStore:
    """Directory of per-config result records, keyed by config hash.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, config: SweepConfig) -> Path:
        """The record file a config maps to (whether or not it exists)."""
        return self.root / f"{config.config_hash()}.json"

    def __contains__(self, config: SweepConfig) -> bool:
        return self.path_for(config).exists()

    def save(self, record: ConfigRecord) -> Path:
        """Atomically persist one record; returns its path.

        The temp name is unique per writer (``tempfile`` in the store root),
        so concurrent sweeps sharing a store cannot interleave their writes:
        whichever ``os.replace`` lands last wins with an intact record.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(record.config)
        fd, tmp = tempfile.mkstemp(
            prefix=f"{record.config.config_hash()}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(record.as_dict()))
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return path

    def load(self, config: SweepConfig) -> Optional[ConfigRecord]:
        """Load the record for ``config``, or ``None`` if not stored yet.

        Raises :class:`StoreSchemaError` when a file exists for the config's
        hash but is not a readable record of a supported schema.
        """
        path = self.path_for(config)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreSchemaError(f"{path}: not valid JSON ({exc})") from exc
        return load_record(data, source=str(path))

    # -- auxiliary blobs -----------------------------------------------------
    #
    # Besides per-config result records, a store can hold named auxiliary
    # JSON blobs — checkpoints of long-running drivers that want the same
    # atomic-write + resume semantics (the adversarial-search driver keeps
    # its per-step state under ``adversary/<spec-hash>``).  Blob keys map to
    # ``<key>.json`` under the store root; a ``/`` in the key creates a
    # subdirectory, which keeps blobs out of the top-level ``*.json`` record
    # namespace (and out of ``len(store)``).  Schema versioning of the blob
    # payload is the caller's contract; this layer only guarantees atomic
    # writes and raises :class:`StoreSchemaError` for unreadable JSON.

    def blob_path(self, key: str) -> Path:
        """The file a blob key maps to (whether or not it exists)."""
        if not key or key.startswith("/") or ".." in key:
            raise ValueError(f"invalid blob key {key!r}")
        return self.root / f"{key}.json"

    def save_blob(self, key: str, payload: Dict[str, object]) -> Path:
        """Atomically persist one JSON blob under ``key``; returns its path."""
        path = self.blob_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=path.stem + ".", suffix=".tmp", dir=path.parent)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload))
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return path

    def load_blob(self, key: str) -> Optional[Dict[str, object]]:
        """Load the blob under ``key``, or ``None`` when absent.

        Raises :class:`StoreSchemaError` when the file exists but is not
        valid JSON (a torn or foreign file must fail loudly, exactly like a
        corrupt config record).
        """
        path = self.blob_path(key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreSchemaError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(data, dict):
            raise StoreSchemaError(f"{path}: blob is not a JSON object")
        return data

    def blobs(self, prefix: str) -> List[Path]:
        """Existing blob files under ``prefix/`` (sorted, for reporting)."""
        directory = self.root / prefix
        if not directory.is_dir():
            return []
        return sorted(directory.glob("*.json"))

    def load_many(self, configs: Sequence[SweepConfig]) -> Dict[str, ConfigRecord]:
        """Bulk load: records for every stored config, keyed by config hash.

        Unstored configs are simply absent from the result — the campaign
        driver uses this to partition a deduplicated spec list into hits and
        pending work in one pass.
        """
        out: Dict[str, ConfigRecord] = {}
        for config in configs:
            record = self.load(config)
            if record is not None:
                out[config.config_hash()] = record
        return out

    def completed(self, configs: Sequence[SweepConfig]) -> List[SweepConfig]:
        """The subset of ``configs`` that already have a stored record."""
        return [config for config in configs if config in self]

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
