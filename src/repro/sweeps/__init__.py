"""Sweep orchestration: whole config grids sharded across processes.

The third layer of the execution stack.  The protocol/policy vectorized APIs
answer "which pairs transmit in this chunk", :mod:`repro.engine` turns that
into one chunked scan over B patterns, and this package turns a *grid* of
``(protocol, n, k, workload, seed)`` configs into a process-parallel,
resumable campaign:

* :class:`~repro.sweeps.spec.SweepSpec` / :class:`~repro.sweeps.spec.SweepConfig`
  — the grid and its cells as plain JSON-able data with stable content
  hashes;
* :class:`~repro.sweeps.runner.SweepRunner` — shards pending configs across
  ``ProcessPoolExecutor`` workers; results are bit-for-bit identical for any
  worker count because every config derives its randomness from its own
  content (``SeedSequence``, never a shared stream);
* :class:`~repro.sweeps.store.SweepStore` — one JSON record per config keyed
  by config hash, written atomically as configs finish, so interrupted
  sweeps resume and overlapping sweeps share work;
* :func:`~repro.sweeps.search.worst_case_grid` — the worst-case-search driver
  over an (n, k) grid, sharded the same way;
* :mod:`repro.sweeps.protocols` — the name → builder registry workers use to
  reconstruct protocols from primitives (shared with the CLI).

Example
-------
>>> from repro.sweeps import SweepSpec, SweepRunner
>>> spec = SweepSpec(protocols=("round-robin",), n_values=(32,), k_values=(4,), batch=8)
>>> result = SweepRunner(workers=0).run(spec)
>>> len(result), result.all_solved
(1, True)

The CLI front end is ``repro sweep run|resume|status`` (see
:mod:`repro.cli`).
"""

from repro.sweeps.protocols import PROTOCOL_BUILDERS, build_protocol, protocol_names
from repro.sweeps.runner import SweepResult, SweepRunner, SweepStatus, map_jobs, resolve_config
from repro.sweeps.search import WorstCaseRecord, worst_case_grid
from repro.sweeps.spec import SweepConfig, SweepSpec
from repro.sweeps.store import ConfigRecord, StoreSchemaError, SweepStore, load_record

__all__ = [
    "PROTOCOL_BUILDERS",
    "build_protocol",
    "protocol_names",
    "SweepConfig",
    "SweepSpec",
    "SweepStore",
    "StoreSchemaError",
    "load_record",
    "ConfigRecord",
    "SweepRunner",
    "SweepResult",
    "SweepStatus",
    "map_jobs",
    "resolve_config",
    "WorstCaseRecord",
    "worst_case_grid",
]
