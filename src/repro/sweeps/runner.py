"""Process-parallel sweep execution: shard config grids across workers.

The batch engine (:mod:`repro.engine`) made a *single* config fast; this
module makes a *grid* of configs fast.  A :class:`SweepRunner` partitions the
pending configs of a :class:`~repro.sweeps.spec.SweepSpec` across
:class:`concurrent.futures.ProcessPoolExecutor` workers — unlike a
:class:`~repro.engine.Campaign`'s threads, separate processes sidestep the
GIL for the Python-side share of pattern generation and protocol
construction, and isolate per-config memory — and merges the finished
:class:`~repro.sweeps.store.ConfigRecord` rows back in grid order.

Worker-count invariance
-----------------------

Sweep results are bit-for-bit identical no matter how the grid is sharded
(serial, 4 workers, resumed across sessions), because every config is
resolved from its own content alone:

* patterns come from ``WorkloadSuite.generate(workload, n, k, batch, seed)``,
  whose per-row generators are ``SeedSequence``-spawned from the config seed
  keyed by the workload name (see :mod:`repro._util`);
* randomized policies draw from per-pattern child streams spawned from the
  config seed by the :class:`~repro.engine.Campaign` inside the worker;
* protocol construction is deterministic in ``(name, n, k, seed)``
  (:mod:`repro.sweeps.protocols`).

No shared mutable stream crosses configs, so scheduling order cannot leak
into outcomes.  ``tests/sweeps`` asserts the invariance explicitly.

Resumability
------------

With a :class:`~repro.sweeps.store.SweepStore` attached, every record is
persisted the moment its config completes and already-stored configs are
never recomputed, so an interrupted ``repro sweep run`` picks up where it
left off and overlapping sweeps share work across sessions.

One portability caveat: workers resolve workload and protocol *names*
against their own process's registries.  Extensions registered in-process
(``register_workload`` / ``register_protocol``) are visible to forked
workers (Linux) but not to spawned ones (macOS/Windows default start
method) — ship cross-platform extensions as ``repro.workloads`` entry
points, which every worker loads on import, or run with ``workers <= 1``.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

from repro.engine import BatchResult, Campaign
from repro.sweeps.spec import SweepConfig, SweepSpec
from repro.sweeps.store import ConfigRecord, SweepStore

__all__ = ["SweepRunner", "SweepResult", "SweepStatus", "resolve_config", "map_jobs"]

_Job = TypeVar("_Job")
_Out = TypeVar("_Out")


def resolve_config(config: SweepConfig) -> ConfigRecord:
    """Resolve one config end to end; the unit of work a sweep worker runs.

    Builds the protocol from the config's name axes, draws the pattern batch
    through the workload suite, pushes it through a serial
    :class:`~repro.engine.Campaign` (parallelism lives at the config level —
    nesting thread workers inside process workers would oversubscribe), and
    returns the full-outcome :class:`~repro.sweeps.store.ConfigRecord`.
    """
    from repro.sweeps.protocols import build_protocol
    from repro.workloads import WorkloadSuite

    protocol = build_protocol(config.protocol, config.n, config.k, seed=config.seed)
    patterns = WorkloadSuite().generate(
        config.workload,
        n=config.n,
        k=config.k,
        batch=config.batch,
        seed=config.seed,
        **dict(config.params),
    )
    campaign = Campaign(protocol, max_slots=config.max_slots, seed=config.seed)
    return ConfigRecord.from_batch(config, campaign.run(patterns))


def map_jobs(
    fn: Callable[[_Job], _Out],
    jobs: Sequence[_Job],
    *,
    workers: int = 0,
    on_result: Optional[Callable[[int, _Out], None]] = None,
) -> List[_Out]:
    """Map a picklable function over jobs, serially or across processes.

    The process-sharding primitive shared by :class:`SweepRunner`, the
    worst-case grid driver (:mod:`repro.sweeps.search`) and the experiment
    registry's sweeps.  ``workers <= 1`` (or a single job) runs serially in
    the calling process; results always come back in job order, and callers
    must guarantee ``fn`` is order-independent (pure in its job) so the two
    paths agree bit for bit.

    ``on_result(index, result)`` fires as each job finishes (completion
    order) — the hook the sweep store uses to persist records incrementally.
    """
    jobs = list(jobs)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers <= 1 or len(jobs) <= 1:
        results: List[_Out] = []
        for index, job in enumerate(jobs):
            result = fn(job)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    out: Dict[int, _Out] = {}
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        pending = {pool.submit(fn, job): index for index, job in enumerate(jobs)}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                result = future.result()
                if on_result is not None:
                    on_result(index, result)
                out[index] = result
    return [out[index] for index in range(len(jobs))]


@dataclass(frozen=True)
class SweepStatus:
    """Progress of a spec against a store: what is done, what remains."""

    total: int
    completed: int

    @property
    def pending(self) -> int:
        return self.total - self.completed

    def describe(self) -> str:
        return f"{self.completed}/{self.total} configs completed, {self.pending} pending"


@dataclass
class SweepResult:
    """Ordered per-config records of one sweep run.

    ``records`` aligns with the spec's grid order regardless of how many
    workers resolved it or how many records came from the store.
    """

    records: List[ConfigRecord] = field(default_factory=list)
    reused: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def all_solved(self) -> bool:
        """True iff every pattern of every config solved within its horizon."""
        return all(record.all_solved for record in self.records)

    def rows(self) -> List[Dict[str, object]]:
        """Flat export rows (one per config) for ``repro.reporting.export``."""
        return [record.row() for record in self.records]

    def batch_results(self) -> List[BatchResult]:
        """Reconstructed :class:`BatchResult` per config, in grid order."""
        return [record.to_batch_result() for record in self.records]


@dataclass
class SweepRunner:
    """Shard a config grid across worker processes, with store-backed resume.

    Parameters
    ----------
    workers:
        Worker processes; ``0`` or ``1`` resolves configs serially in the
        calling process (identical results — sharding is scheduling only).
    store:
        Optional :class:`~repro.sweeps.store.SweepStore`.  When set, stored
        configs are served from disk instead of recomputed and fresh records
        are persisted as they complete, making the sweep resumable.
    """

    workers: int = 0
    store: Optional[SweepStore] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    def _expand(self, spec: Union[SweepSpec, Sequence[SweepConfig]]) -> List[SweepConfig]:
        if isinstance(spec, SweepSpec):
            return spec.configs()
        return list(spec)

    def run(
        self,
        spec: Union[SweepSpec, Sequence[SweepConfig]],
        *,
        progress: Optional[Callable[[str], None]] = None,
    ) -> SweepResult:
        """Resolve every config of ``spec`` (a spec or an explicit config list).

        Already-stored configs are reused; the rest are sharded across the
        worker pool.  ``progress`` (if given) receives one line per resolved
        config, in completion order.
        """
        configs = self._expand(spec)
        records: Dict[int, ConfigRecord] = {}
        pending: List[SweepConfig] = []
        pending_indices: List[int] = []
        for index, config in enumerate(configs):
            stored = self.store.load(config) if self.store is not None else None
            if stored is not None:
                records[index] = stored
            else:
                pending.append(config)
                pending_indices.append(index)
        reused = len(records)

        def _finished(position: int, record: ConfigRecord) -> None:
            if self.store is not None:
                self.store.save(record)
            if progress is not None:
                progress(f"resolved {record.config.label()}")

        fresh = map_jobs(resolve_config, pending, workers=self.workers, on_result=_finished)
        for index, record in zip(pending_indices, fresh):
            records[index] = record
        return SweepResult(
            records=[records[index] for index in range(len(configs))], reused=reused
        )

    def status(self, spec: Union[SweepSpec, Sequence[SweepConfig]]) -> SweepStatus:
        """How much of ``spec`` the attached store already covers."""
        configs = self._expand(spec)
        if self.store is None:
            return SweepStatus(total=len(configs), completed=0)
        return SweepStatus(
            total=len(configs), completed=len(self.store.completed(configs))
        )
