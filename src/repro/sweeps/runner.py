"""Process-parallel sweep execution: shard config grids across workers.

The batch engine (:mod:`repro.engine`) made a *single* config fast; this
module makes a *grid* of configs fast.  A :class:`SweepRunner` partitions the
pending configs of a :class:`~repro.sweeps.spec.SweepSpec` across
:class:`concurrent.futures.ProcessPoolExecutor` workers — unlike a
:class:`~repro.engine.Campaign`'s threads, separate processes sidestep the
GIL for the Python-side share of pattern generation and protocol
construction, and isolate per-config memory — and merges the finished
:class:`~repro.sweeps.store.ConfigRecord` rows back in grid order.

Worker-count invariance
-----------------------

Sweep results are bit-for-bit identical no matter how the grid is sharded
(serial, 4 workers, resumed across sessions), because every config is
resolved from its own content alone:

* patterns come from ``WorkloadSuite.generate(workload, n, k, batch, seed)``,
  whose per-row generators are ``SeedSequence``-spawned from the config seed
  keyed by the workload name (see :mod:`repro._util`);
* randomized policies draw from per-pattern child streams spawned from the
  config seed by the :class:`~repro.engine.Campaign` inside the worker;
* protocol construction is deterministic in ``(name, n, k, seed)``
  (:mod:`repro.sweeps.protocols`).

No shared mutable stream crosses configs, so scheduling order cannot leak
into outcomes.  ``tests/sweeps`` asserts the invariance explicitly.

Resumability
------------

With a :class:`~repro.sweeps.store.SweepStore` attached, every record is
persisted the moment its config completes and already-stored configs are
never recomputed, so an interrupted ``repro sweep run`` picks up where it
left off and overlapping sweeps share work across sessions.

One portability caveat: workers resolve workload and protocol *names*
against their own process's registries.  Extensions registered in-process
(``register_workload`` / ``register_protocol``) are visible to forked
workers (Linux) but not to spawned ones (macOS/Windows default start
method) — ship cross-platform extensions as ``repro.workloads`` entry
points, which every worker loads on import, or run with ``workers <= 1``.
"""

from __future__ import annotations

import functools
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

from repro import obs
from repro.engine import BatchResult, Campaign
from repro.sweeps.spec import SweepConfig, SweepSpec
from repro.sweeps.store import ConfigRecord, SweepStore

__all__ = ["SweepRunner", "SweepResult", "SweepStatus", "resolve_config", "map_jobs"]

_Job = TypeVar("_Job")
_Out = TypeVar("_Out")


def resolve_config(config: SweepConfig, backend: Optional[str] = None) -> ConfigRecord:
    """Resolve one config end to end; the unit of work a sweep worker runs.

    Builds the protocol from the config's name axes, draws the pattern batch
    through the workload suite, pushes it through a serial
    :class:`~repro.engine.Campaign` (parallelism lives at the config level —
    nesting thread workers inside process workers would oversubscribe), and
    returns the full-outcome :class:`~repro.sweeps.store.ConfigRecord`.

    ``backend`` selects the engine's array backend by name (see
    :mod:`repro.engine.backend`); it is execution metadata, not config
    identity — records resolved on different backends are bit-for-bit
    identical and share one content hash.  ``None`` follows ``REPRO_BACKEND``,
    which worker processes inherit from the parent's environment.
    """
    from repro.sweeps.protocols import build_protocol
    from repro.workloads import WorkloadSuite

    protocol = build_protocol(
        config.protocol,
        config.n,
        config.k,
        seed=config.seed,
        **dict(config.protocol_params),
    )
    patterns = WorkloadSuite().generate(
        config.workload,
        n=config.n,
        k=config.k,
        batch=config.batch,
        seed=config.seed,
        **dict(config.params),
    )
    campaign = Campaign(
        protocol, max_slots=config.max_slots, seed=config.seed, backend=backend
    )
    return ConfigRecord.from_batch(config, campaign.run(patterns))


class _InstrumentedJob:
    """Picklable wrapper running one job under :func:`repro.obs.capture`.

    Workers (or the serial path, for uniformity) collect the job's counters,
    gauges and span timings into a fresh in-memory state and ship the
    snapshot back with the result; the parent folds snapshots into its own
    session with :func:`repro.obs.merge_snapshot`.  Because the aggregates
    are additive and the capture state has no sink, trace files see no
    interleaved worker writes and counter totals are worker-count invariant.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_Job], _Out]) -> None:
        self.fn = fn

    def __getstate__(self):
        return self.fn

    def __setstate__(self, fn) -> None:
        self.fn = fn

    def __call__(self, job: _Job):
        t0 = time.perf_counter()
        with obs.capture() as state:
            result = self.fn(job)
            obs.gauge("sweeps.job_seconds", time.perf_counter() - t0)
            snap = state.snapshot()
        return result, snap


def map_jobs(
    fn: Callable[[_Job], _Out],
    jobs: Sequence[_Job],
    *,
    workers: int = 0,
    on_result: Optional[Callable[[int, _Out], None]] = None,
) -> List[_Out]:
    """Map a picklable function over jobs, serially or across processes.

    The process-sharding primitive shared by :class:`SweepRunner`, the
    worst-case grid driver (:mod:`repro.sweeps.search`) and the experiment
    registry's sweeps.  ``workers <= 1`` (or a single job) runs serially in
    the calling process; results always come back in job order, and callers
    must guarantee ``fn`` is order-independent (pure in its job) so the two
    paths agree bit for bit.

    ``on_result(index, result)`` fires as each job finishes (completion
    order) — the hook the sweep store uses to persist records incrementally.

    When an observability session is active (:func:`repro.obs.enabled`), each
    job runs under a capture (see :class:`_InstrumentedJob`) and its snapshot
    is merged back here, on both the serial and the process path, so counter
    totals do not depend on ``workers``.  One ``job`` trace event is emitted
    per job with its duration and per-job aggregates.
    """
    jobs = list(jobs)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    instrumented = obs.enabled()
    run: Callable = _InstrumentedJob(fn) if instrumented else fn

    def _deliver(index: int, raw) -> _Out:
        if instrumented:
            result, snap = raw
            obs.merge_snapshot(snap)
            obs.event(
                "job",
                index=index,
                counters=snap["counters"],
                gauges=snap["gauges"],
            )
        else:
            result = raw
        if on_result is not None:
            on_result(index, result)
        return result

    if workers <= 1 or len(jobs) <= 1:
        return [_deliver(index, run(job)) for index, job in enumerate(jobs)]
    out: Dict[int, _Out] = {}
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        pending = {pool.submit(run, job): index for index, job in enumerate(jobs)}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                out[index] = _deliver(index, future.result())
    return [out[index] for index in range(len(jobs))]


@dataclass
class _ProgressMeter:
    """Format one progress line per resolved config.

    Lines keep the historical ``resolved <...>`` prefix and add live
    counts from the run's :class:`SweepStatus` view plus throughput and an
    ETA over the *fresh* configs (store-reused records complete instantly
    and would skew a naive rate).  Counts are exact at any worker count —
    they advance one per delivered record in the parent process; only the
    rate/ETA figures are wall-clock estimates.
    """

    total: int
    completed: int
    emit: Callable[[str], None]
    _t0: float = field(default_factory=time.perf_counter)
    _fresh: int = 0

    def step(self, label: str) -> None:
        self.completed += 1
        self._fresh += 1
        elapsed = time.perf_counter() - self._t0
        rate = self._fresh / elapsed if elapsed > 0 else 0.0
        status = SweepStatus(total=self.total, completed=self.completed)
        line = f"resolved {label} [{status.completed}/{status.total}"
        if rate > 0:
            line += f", {rate:.2f} configs/s"
            if status.pending:
                line += f", eta ~{status.pending / rate:.0f}s"
        self.emit(line + "]")


@dataclass(frozen=True)
class SweepStatus:
    """Progress of a spec against a store: what is done, what remains."""

    total: int
    completed: int

    @property
    def pending(self) -> int:
        return self.total - self.completed

    def describe(self) -> str:
        return f"{self.completed}/{self.total} configs completed, {self.pending} pending"


@dataclass
class SweepResult:
    """Ordered per-config records of one sweep run.

    ``records`` aligns with the spec's grid order regardless of how many
    workers resolved it or how many records came from the store.
    """

    records: List[ConfigRecord] = field(default_factory=list)
    reused: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def all_solved(self) -> bool:
        """True iff every pattern of every config solved within its horizon."""
        return all(record.all_solved for record in self.records)

    def rows(self) -> List[Dict[str, object]]:
        """Flat export rows (one per config) for ``repro.reporting.export``."""
        return [record.row() for record in self.records]

    def batch_results(self) -> List[BatchResult]:
        """Reconstructed :class:`BatchResult` per config, in grid order."""
        return [record.to_batch_result() for record in self.records]


@dataclass
class SweepRunner:
    """Shard a config grid across worker processes, with store-backed resume.

    Parameters
    ----------
    workers:
        Worker processes; ``0`` or ``1`` resolves configs serially in the
        calling process (identical results — sharding is scheduling only).
    store:
        Optional :class:`~repro.sweeps.store.SweepStore`.  When set, stored
        configs are served from disk instead of recomputed and fresh records
        are persisted as they complete, making the sweep resumable.
    backend:
        Optional array-backend name forwarded to every
        :func:`resolve_config` job (``None`` lets workers follow their
        inherited ``REPRO_BACKEND``).  Execution metadata only: it does not
        enter config hashes, and results are bit-for-bit identical on every
        backend.
    """

    workers: int = 0
    store: Optional[SweepStore] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.backend is not None:
            # Fail fast (unknown name / missing package) before any job ships.
            from repro.engine.backend import get_backend

            get_backend(self.backend)

    def _expand(self, spec: Union[SweepSpec, Sequence[SweepConfig]]) -> List[SweepConfig]:
        if isinstance(spec, SweepSpec):
            return spec.configs()
        return list(spec)

    def run(
        self,
        spec: Union[SweepSpec, Sequence[SweepConfig]],
        *,
        progress: Optional[Callable[[str], None]] = None,
    ) -> SweepResult:
        """Resolve every config of ``spec`` (a spec or an explicit config list).

        Already-stored configs are reused; the rest are sharded across the
        worker pool.  ``progress`` (if given) receives one line per resolved
        config, in completion order.
        """
        configs = self._expand(spec)
        records: Dict[int, ConfigRecord] = {}
        pending: List[SweepConfig] = []
        pending_indices: List[int] = []
        for index, config in enumerate(configs):
            stored = self.store.load(config) if self.store is not None else None
            if stored is not None:
                records[index] = stored
            else:
                pending.append(config)
                pending_indices.append(index)
        reused = len(records)
        obs.add("sweeps.configs_total", len(configs))
        obs.add("sweeps.configs_reused", reused)
        if self.store is not None:
            # Store traffic, counted parent-side in the partition above so the
            # totals stay worker-count invariant (workers never touch the
            # store).  A warm rerun of a campaign reads as misses == 0.
            obs.add("store.hits", reused)
            obs.add("store.misses", len(pending))
        meter = (
            None
            if progress is None
            else _ProgressMeter(total=len(configs), completed=reused, emit=progress)
        )

        def _finished(position: int, record: ConfigRecord) -> None:
            if self.store is not None:
                self.store.save(record)
            obs.add("sweeps.configs_resolved")
            if meter is not None:
                meter.step(record.config.label())

        with obs.span(
            "sweeps.run", total=len(configs), pending=len(pending), workers=self.workers
        ):
            fn = (
                resolve_config
                if self.backend is None
                else functools.partial(resolve_config, backend=self.backend)
            )
            fresh = map_jobs(fn, pending, workers=self.workers, on_result=_finished)
        for index, record in zip(pending_indices, fresh):
            records[index] = record
        return SweepResult(
            records=[records[index] for index in range(len(configs))], reused=reused
        )

    def status(self, spec: Union[SweepSpec, Sequence[SweepConfig]]) -> SweepStatus:
        """How much of ``spec`` the attached store already covers."""
        configs = self._expand(spec)
        if self.store is None:
            return SweepStatus(total=len(configs), completed=0)
        return SweepStatus(
            total=len(configs), completed=len(self.store.completed(configs))
        )
