"""Named protocol builders: construct any library protocol from primitives.

A sweep config travels between processes as plain data — a protocol *name*
plus ``(n, k, seed)`` — and each worker reconstructs the protocol object on
its side of the pipe.  This registry is the single place that mapping lives:
the CLI's ``simulate``/``workloads`` subcommands and the sweep workers all
build protocols through :func:`build_protocol`, so a name means the same
protocol everywhere.

Construction is deterministic: the same ``(name, n, k, seed)`` always yields
a protocol with identical behaviour, which is what makes sweep results
worker-count invariant (see :mod:`repro.sweeps.runner`).  Builders that need
selective families draw them from a :class:`~repro.experiments.cache.FamilyCache`
(the process-wide :data:`~repro.experiments.cache.shared_cache` by default),
so a worker process pays for each ``(n, seed)`` concatenation once no matter
how many configs it resolves.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = ["PROTOCOL_BUILDERS", "protocol_names", "register_protocol", "build_protocol"]

#: Registry of protocol builders ``(n, k, seed, cache) -> protocol``.
PROTOCOL_BUILDERS: Dict[str, Callable] = {}


def register_protocol(name: str, builder: Callable, *, replace: bool = False) -> None:
    """Register a named protocol builder ``(n, k, seed, cache) -> protocol``.

    ``replace=False`` (the default) refuses to overwrite an existing name, so
    extensions cannot silently shadow the built-in set.
    """
    if not replace and name in PROTOCOL_BUILDERS:
        raise ValueError(f"protocol {name!r} is already registered")
    PROTOCOL_BUILDERS[name] = builder


def protocol_names() -> list:
    """Registered protocol names, sorted."""
    return sorted(PROTOCOL_BUILDERS)


def build_protocol(name: str, n: int, k: int = 1, *, seed: int = 0, cache=None, **params):
    """Build one protocol from its registry name and ``(n, k, seed)``.

    Parameters
    ----------
    name:
        Registry key (see :func:`protocol_names`).
    n, k:
        Universe size and contender budget.  Builders that do not use ``k``
        (e.g. ``round-robin``) ignore it.
    seed:
        Seed for every stochastic ingredient of the construction (selective
        families, waking-matrix hash).  Purely randomized policies such as
        ``rpd`` are built deterministically and draw their randomness at
        simulation time instead.
    cache:
        :class:`~repro.experiments.cache.FamilyCache` serving selective
        families (default: the process-wide shared cache).
    params:
        Extra construction parameters forwarded to the builder (e.g.
        ``window``/``c`` for ``scenario-c``).  A builder that does not accept
        a given parameter raises ``TypeError`` — overrides never pass
        silently.  This is how :attr:`SweepConfig.protocol_params
        <repro.sweeps.spec.SweepConfig>` reaches the construction.
    """
    try:
        builder = PROTOCOL_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; registered: {protocol_names()}"
        ) from None
    if cache is None:
        from repro.experiments.cache import shared_cache

        cache = shared_cache
    return builder(n, k, seed, cache, **params)


def _build_round_robin(n, k, seed, cache):
    from repro.core.round_robin import RoundRobin

    return RoundRobin(n)


def _build_tdma(n, k, seed, cache):
    from repro.baselines import TDMA

    return TDMA(n)


def _build_scenario_a(n, k, seed, cache):
    from repro.core.scenario_a import WakeupWithS

    return WakeupWithS(n, s=0, families=cache.concatenation(n, n, seed=seed))


def _build_scenario_b(n, k, seed, cache):
    from repro.core.scenario_b import WakeupWithK

    return WakeupWithK(n, k, families=cache.concatenation(n, k, seed=seed))


def _build_scenario_c(n, k, seed, cache, c=2, window=0):
    from repro.core.scenario_c import WakeupProtocol

    # window=0 means "the paper's default" (derived from n); the explicit
    # values are what the E10 window-length ablation sweeps.
    return WakeupProtocol(n, c=c, window=window or None, seed=seed)


def _build_komlos_greenberg(n, k, seed, cache):
    from repro.baselines import KomlosGreenberg

    return KomlosGreenberg(n, k, families=cache.concatenation(n, k, seed=seed))


def _build_local_clock(n, k, seed, cache):
    from repro.core.local_clock import LocalClockWakeup

    return LocalClockWakeup(n, k, families=cache.concatenation(n, k, seed=seed))


def _build_local_clock_c(n, k, seed, cache):
    from repro.core.local_clock import LocalClockScenarioC

    return LocalClockScenarioC(n, seed=seed)


def _build_rpd(n, k, seed, cache):
    from repro.core.randomized import RepeatedProbabilityDecrease

    return RepeatedProbabilityDecrease(n)


def _build_rpd_known_k(n, k, seed, cache):
    from repro.core.randomized import RepeatedProbabilityDecrease

    return RepeatedProbabilityDecrease(n, k=k)


def _build_aloha(n, k, seed, cache):
    from repro.baselines import tuned_aloha

    return tuned_aloha(n, k)


def _build_beb(n, k, seed, cache):
    from repro.baselines import BinaryExponentialBackoff

    # Construction is deterministic; the backoff draws come from per-pattern
    # child streams at simulation time (run_feedback_batch / the slot loop),
    # which is what keeps sweep results worker-count invariant.
    return BinaryExponentialBackoff(n)


def _build_tree_splitting(n, k, seed, cache):
    from repro.baselines import TreeSplitting

    return TreeSplitting(n)


def _build_wait_and_go(n, k, seed, cache):
    from repro.core.scenario_b import WaitAndGo

    return WaitAndGo(n, k, families=cache.concatenation(n, k, seed=seed))


def _build_select_first(n, k, seed, cache):
    from repro.core.scenario_a import SelectAmongTheFirst

    # The non-interleaved Scenario A arm (the E10 interleaving ablation);
    # like scenario-a it selects among the first s=0 and ignores k.
    return SelectAmongTheFirst(n, 0, cache.concatenation(n, n, seed=seed))


def _build_decay(n, k, seed, cache):
    from repro.core.randomized import DecayPolicy

    return DecayPolicy(n)


register_protocol("round-robin", _build_round_robin)
register_protocol("tdma", _build_tdma)
register_protocol("scenario-a", _build_scenario_a)
register_protocol("scenario-b", _build_scenario_b)
register_protocol("scenario-c", _build_scenario_c)
register_protocol("komlos-greenberg", _build_komlos_greenberg)
register_protocol("local-clock", _build_local_clock)
register_protocol("local-clock-c", _build_local_clock_c)
register_protocol("rpd", _build_rpd)
register_protocol("rpd-known-k", _build_rpd_known_k)
register_protocol("aloha", _build_aloha)
register_protocol("beb", _build_beb)
register_protocol("tree-splitting", _build_tree_splitting)
register_protocol("wait-and-go", _build_wait_and_go)
register_protocol("select-first", _build_select_first)
register_protocol("decay", _build_decay)
