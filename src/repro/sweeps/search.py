"""Process-parallel worst-case search over an (n, k) grid.

:func:`repro.channel.adversary.worst_case_search` finds a bad wake-up pattern
for *one* protocol configuration; experiment tables want that column for a
whole grid.  :func:`worst_case_grid` shards the grid across processes through
the same :func:`~repro.sweeps.runner.map_jobs` primitive the sweep runner
uses: each job rebuilds its protocol from the registry name
(:mod:`repro.sweeps.protocols`) and derives the search's generator from the
config content alone (``SeedSequence`` keyed by protocol, n and k — see
:mod:`repro._util`), so the reported worst cases are bit-for-bit identical
for any worker count.

The *guided* successor of this driver — simulated annealing / evolutionary /
bandit search over the wake-pattern space itself, not just the (n, k) grid —
lives in :mod:`repro.adversary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.channel.wakeup import WakeupPattern, decode_wake_times, encode_wake_times

__all__ = ["WorstCaseRecord", "worst_case_grid"]


@dataclass(frozen=True)
class WorstCaseRecord:
    """The worst candidate found for one (protocol, n, k) cell.

    ``latency`` is the run's latency when solved, else ``max_slots`` (the
    horizon sentinel, matching the sequential search's convention).
    ``wake_times`` reproduces the offending pattern exactly, and the
    ``trials``/``window``/``seed`` fields pin down the search that found it,
    so an exported row is a complete replay recipe.
    """

    protocol: str
    n: int
    k: int
    latency: int
    solved: bool
    wake_times: Dict[int, int]
    trials: int = 0
    window: int = 0
    seed: int = 0

    def pattern(self) -> WakeupPattern:
        """The offending wake-up pattern as a first-class object."""
        return WakeupPattern(self.n, dict(self.wake_times))

    def row(self) -> Dict[str, object]:
        """Flat dict for CSV/JSON export.

        Every reproducing field survives the flattening: the search
        parameters (``trials``, ``window``, ``seed``) and the exact wake
        times in the compact ``station@slot;...`` encoding of
        :func:`repro.channel.wakeup.encode_wake_times`.
        :meth:`from_row` inverts this exactly.
        """
        return {
            "protocol": self.protocol,
            "n": self.n,
            "k": self.k,
            "latency": self.latency,
            "solved": self.solved,
            "pattern_size": len(self.wake_times),
            "trials": self.trials,
            "window": self.window,
            "seed": self.seed,
            "wake_times": encode_wake_times(self.wake_times),
        }

    @classmethod
    def from_row(cls, row: Mapping[str, object]) -> "WorstCaseRecord":
        """Rebuild a record from one exported :meth:`row` dict."""
        return cls(
            protocol=str(row["protocol"]),
            n=int(row["n"]),
            k=int(row["k"]),
            latency=int(row["latency"]),
            solved=bool(row["solved"]),
            wake_times=decode_wake_times(str(row["wake_times"])),
            trials=int(row.get("trials", 0)),
            window=int(row.get("window", 0)),
            seed=int(row.get("seed", 0)),
        )


def _worst_case_job(job: Tuple[str, int, int, int, int, int, int]) -> WorstCaseRecord:
    """Resolve one grid cell (top-level so it pickles into worker processes)."""
    from repro._util import derived_generator
    from repro.channel.adversary import worst_case_search
    from repro.sweeps.protocols import build_protocol

    name, n, k, trials, window, max_slots, seed = job
    protocol = build_protocol(name, n, k, seed=seed)
    rng = derived_generator(seed, "worst-case-grid", name, n, k)
    result, pattern = worst_case_search(
        protocol, n, k, trials=trials, window=window, max_slots=max_slots, rng=rng
    )
    return WorstCaseRecord(
        protocol=name,
        n=n,
        k=k,
        latency=int(result.latency) if result.solved else int(max_slots),
        solved=bool(result.solved),
        wake_times=dict(pattern.wake_times),
        trials=int(trials),
        window=int(window),
        seed=int(seed),
    )


def worst_case_grid(
    protocol: str,
    n_values: Sequence[int],
    k_values: Sequence[int],
    *,
    trials: int = 32,
    window: int = 256,
    max_slots: int = 200_000,
    seed: int = 0,
    workers: int = 0,
) -> List[WorstCaseRecord]:
    """Run :func:`worst_case_search` over the (n, k) grid, process-parallel.

    Cells with ``k > n`` are skipped; records come back in grid order
    (``n`` major, ``k`` minor).  ``workers`` shards cells across processes
    exactly like a :class:`~repro.sweeps.runner.SweepRunner` shards configs
    — results do not depend on the worker count.
    """
    from repro.sweeps.runner import map_jobs

    jobs = [
        (protocol, int(n), int(k), trials, window, max_slots, seed)
        for n in n_values
        for k in k_values
        if k <= n
    ]
    if not jobs:
        raise ValueError("worst-case grid is empty (every k exceeded its n)")
    return map_jobs(_worst_case_job, jobs, workers=workers)
