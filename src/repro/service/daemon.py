"""The long-lived results service: a worker pool behind a thin HTTP door.

:class:`ResultsService` is the serving core, independent of any transport:
it owns the shared :class:`~repro.sweeps.store.SweepStore`, a long-lived
:class:`~concurrent.futures.ProcessPoolExecutor`, and the request counters.
:meth:`ResultsService.resolve` answers one normalized query — a warm hit is
a pure store lookup (zero engine work), a miss is routed to the pool, which
resolves it through the exact same unit of work the sweep layer uses
(:func:`repro.sweeps.runner.resolve_config`), and the record is written back
before the response returns.  Identical concurrent misses are *single
flight*: the first request computes, the rest await the same future, so a
thundering herd on one cold config costs one engine resolve.

Because the store is keyed by config content hash and every config resolves
from its own content alone, a service response is bit-for-bit identical to
the batch/campaign path for the same spec hash — warm or cold, at any
worker count (``tests/service`` holds the literal byte comparison).

:class:`ServiceServer` is the transport: a threading stdlib
``http.server`` bound to localhost, speaking JSON —

* ``POST /query`` — body is a query mapping (see
  :func:`repro.service.api.normalize_query`); answers the canonical
  response body with cache status in the ``X-Repro-Cache`` header
  (``hit``/``miss``), 400 for malformed queries, 500 for resolution
  failures (the daemon survives them);
* ``GET /status`` — live counters: requests, hits, misses, in-flight,
  stored records, uptime;
* ``POST /stop`` — acknowledges, then shuts the server down.

:func:`serve` ties both together for the CLI: it publishes the bound
endpoint as a store blob (``service/endpoint.json``) so ``repro service
query|status|stop`` can discover a running daemon from the store alone, and
removes the blob on shutdown.

Store sharing is safe by the store's concurrency contract (atomic
single-file writes, last-writer-wins; see :mod:`repro.sweeps.store`): the
daemon and an overlapping ``repro sweep run`` may write the same config
hash concurrently and readers always observe one intact record.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro import obs
from repro.service.api import QueryError, normalize_query, render_response
from repro.sweeps.runner import resolve_config
from repro.sweeps.spec import SweepConfig
from repro.sweeps.store import ConfigRecord, StoreSchemaError, SweepStore

__all__ = [
    "ENDPOINT_BLOB",
    "ENDPOINT_SCHEMA",
    "ResultsService",
    "ServiceServer",
    "serve",
]

#: Store blob key under which a running daemon publishes its endpoint.
ENDPOINT_BLOB = "service/endpoint"

#: Version stamped into the endpoint blob.
ENDPOINT_SCHEMA = 1


class ResultsService:
    """The serving core: store-first resolution over a persistent pool.

    Parameters
    ----------
    store:
        The shared :class:`~repro.sweeps.store.SweepStore` memoization tier.
    workers:
        Worker processes for cold queries.  ``0`` resolves misses inline in
        the serving thread (the CLI fallback path); results are bit-for-bit
        identical either way.
    backend:
        Optional array-backend name forwarded to every resolution
        (execution metadata only — never part of config hashes).
    """

    def __init__(
        self,
        store: SweepStore,
        *,
        workers: int = 2,
        backend: Optional[str] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if backend is not None:
            # Fail fast (unknown name / missing package) before any query.
            from repro.engine.backend import get_backend

            get_backend(backend)
        self.store = store
        self.workers = workers
        self.backend = backend
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[str, Future] = {}
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ResultsService":
        """Create the worker pool (no-op when ``workers == 0``)."""
        if self.workers > 0 and self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self

    def close(self) -> None:
        """Shut the worker pool down (waits for in-flight resolutions)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ResultsService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- resolution ----------------------------------------------------------

    def resolve(self, config: SweepConfig) -> Tuple[ConfigRecord, bool]:
        """Answer one query: ``(record, cached)``.

        A warm hit never touches the engine (pure store lookup).  A miss is
        resolved through the pool (or inline without one), persisted, then
        returned.  Counters advance in the serving process only, so
        ``service.hits``/``service.misses`` totals are worker-count
        invariant, exactly like the sweep layer's ``store.*`` counters.
        """
        key = config.config_hash()
        t0 = time.perf_counter()
        with obs.span("service.request", hash=key):
            with self._lock:
                self.requests += 1
            record = self.store.load(config)
            if record is not None:
                with self._lock:
                    self.hits += 1
                obs.add("service.requests")
                obs.add("service.hits")
                self._log_request(key, "hit", t0)
                return record, True
            with self._lock:
                self.misses += 1
            obs.add("service.requests")
            obs.add("service.misses")
            record = self._compute(config, key)
            self._log_request(key, "miss", t0)
            return record, False

    def _log_request(self, key: str, cache: str, t0: float) -> None:
        seconds = time.perf_counter() - t0
        obs.gauge("service.request_seconds", seconds)
        obs.event("service.request", hash=key, cache=cache, dur_s=round(seconds, 6))

    def _compute(self, config: SweepConfig, key: str) -> ConfigRecord:
        """Resolve one miss, single-flight per config hash.

        The first thread to miss a hash owns its future (pool-submitted, or
        computed inline without a pool); concurrent requests for the same
        hash await that future instead of resolving the config again.  Only
        the owner writes the store, after the future resolves.
        """
        with self._lock:
            future = self._inflight.get(key)
            owner = future is None
            if owner:
                if self._pool is None:
                    future = Future()
                else:
                    future = self._pool.submit(
                        resolve_config, config, backend=self.backend
                    )
                self._inflight[key] = future
        if owner and self._pool is None:
            try:
                future.set_result(resolve_config(config, backend=self.backend))
            except BaseException as exc:
                future.set_exception(exc)
        try:
            record = future.result()
            # Persist before deregistering: a request landing between the
            # two would otherwise miss the store *and* the in-flight table
            # and resolve the config a second time.
            if owner:
                self.store.save(record)
        finally:
            if owner:
                with self._lock:
                    self._inflight.pop(key, None)
        return record

    # -- introspection -------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """Live counters and identity of this service instance."""
        with self._lock:
            requests, hits, misses = self.requests, self.hits, self.misses
            inflight = len(self._inflight)
        return {
            "schema": 1,
            "requests": requests,
            "hits": hits,
            "misses": misses,
            "inflight": inflight,
            "workers": self.workers,
            "records": len(self.store),
            "store": str(self.store.root),
            "pid": os.getpid(),
            "uptime_s": round(time.perf_counter() - self._t0, 3),
        }


class _Handler(BaseHTTPRequestHandler):
    """JSON request handler over one :class:`ResultsService`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ResultsService:
        return self.server.service

    def log_message(self, *args) -> None:
        # The request log is the obs trace (`service.request` events), not
        # stderr noise interleaved with the CLI's own output.
        pass

    def _send(self, code: int, body: bytes, headers: Tuple = ()) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict[str, object]) -> None:
        self._send(code, (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))

    def do_GET(self) -> None:
        if self.path == "/status":
            self._send_json(200, self.service.status())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:
        if self.path == "/query":
            self._handle_query()
        elif self.path == "/stop":
            self._send_json(200, {"stopping": True})
            # shutdown() blocks until serve_forever returns, so it must run
            # outside the handler thread that serve_forever is waiting on.
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _handle_query(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0))
            query = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": f"request body is not JSON: {exc}"})
            return
        try:
            config = normalize_query(query)
        except QueryError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            record, cached = self.service.resolve(config)
        except StoreSchemaError as exc:
            self._send_json(500, {"error": str(exc)})
            return
        except Exception as exc:  # a failed resolution must not kill the daemon
            self._send_json(500, {"error": f"resolution failed: {exc}"})
            return
        self._send(
            200,
            render_response(record).encode("utf-8"),
            headers=(("X-Repro-Cache", "hit" if cached else "miss"),),
        )


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ResultsService`."""

    daemon_threads = True

    def __init__(
        self, service: ResultsService, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def endpoint(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    service: ResultsService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Optional[Callable[[str], None]] = None,
) -> None:
    """Serve ``service`` over HTTP until ``POST /stop`` (or interrupt).

    Publishes the bound endpoint as the store blob ``service/endpoint.json``
    (host-assigned port included, so ``--port 0`` works) and removes it on
    the way out, whatever ends the serve loop.  ``announce`` (if given)
    receives the endpoint URL once the socket is bound.
    """
    server = ServiceServer(service, host=host, port=port)
    service.store.save_blob(
        ENDPOINT_BLOB,
        {"schema": ENDPOINT_SCHEMA, "endpoint": server.endpoint, "pid": os.getpid()},
    )
    if announce is not None:
        announce(server.endpoint)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        with contextlib.suppress(OSError):
            service.store.blob_path(ENDPOINT_BLOB).unlink()
