"""Query normalization and canonical responses for the results service.

A service query is a plain JSON mapping naming the measurement it wants —
protocol name (plus optional ``protocol_params``), ``n``, ``k``, workload,
seed and scale knobs.  :func:`normalize_query` is the single gate that turns
such a mapping into a :class:`~repro.sweeps.spec.SweepConfig`: it coerces
string-typed integers (HTTP clients send text), rejects unknown fields and
unknown protocol/workload names with a :class:`QueryError` (a 400, never a
worker crash), and defers every equivalence decision to the config's own
canonical form.  Dict key order, an explicitly empty ``protocol_params`` and
``"256"`` vs ``256`` all normalize to the same content hash — and therefore
to the same :class:`~repro.sweeps.store.SweepStore` record, which is what
makes the store a memoization tier the CLI, sweeps and service can share.

Responses are rendered by :func:`render_response` as canonical JSON (sorted
keys, no whitespace) over the stored record alone — no timestamps, no cache
status, no worker counts — so the body for a given config hash is
byte-for-byte identical whether it was served warm from the store or freshly
computed, at any worker count.  Cache status travels out of band (the
``X-Repro-Cache`` HTTP header; see :mod:`repro.service.daemon`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from repro.sweeps.spec import SweepConfig
from repro.sweeps.store import ConfigRecord

__all__ = [
    "RESPONSE_SCHEMA",
    "QueryError",
    "normalize_query",
    "render_response",
    "parse_response",
    "experiment_queries",
]

#: Version stamped into every response body; :func:`parse_response` rejects
#: anything else, so a client never misreads a newer server's payload.
RESPONSE_SCHEMA = 1

#: Integer-valued query fields (coerced, so ``"256"`` and ``256`` agree).
_INT_FIELDS = ("n", "k", "batch", "seed", "max_slots")

#: Every field a query may carry; anything else is a typo, not a default.
_QUERY_FIELDS = frozenset(
    (
        "protocol",
        "n",
        "k",
        "workload",
        "batch",
        "seed",
        "max_slots",
        "params",
        "protocol_params",
    )
)


class QueryError(ValueError):
    """A query could not be normalized into a valid measurement spec.

    Raised for malformed shapes (unknown fields, non-integer ``n``), unknown
    protocol or workload names, and invalid combinations (``k > n``) — the
    errors the HTTP front door answers with a 400 instead of handing the
    worker pool a config that can only crash.
    """


def _coerce_int(name: str, value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise QueryError(
            f"query field {name!r} must be an integer, got {type(value).__name__}"
        )
    try:
        return int(value)
    except ValueError:
        raise QueryError(f"query field {name!r} is not an integer: {value!r}") from None


def normalize_query(query: Mapping[str, object]) -> SweepConfig:
    """Normalize one query mapping into its :class:`SweepConfig` identity.

    Missing fields take the :class:`SweepConfig` defaults (``workload``
    ``"uniform"``, ``batch`` 64, ``seed`` 0, ``max_slots`` 200000), so a
    minimal query is just ``{"protocol": ..., "n": ..., "k": ...}``.
    Equivalent queries — any key order, integers as strings, explicitly
    empty or default-valued ``params``/``protocol_params`` — normalize to
    one config and therefore one content hash.
    """
    if not isinstance(query, Mapping):
        raise QueryError(f"query must be a JSON object, got {type(query).__name__}")
    unknown = sorted(set(query) - _QUERY_FIELDS)
    if unknown:
        raise QueryError(
            f"unknown query field(s) {unknown}; valid fields: {sorted(_QUERY_FIELDS)}"
        )
    for required in ("protocol", "n", "k"):
        if required not in query:
            raise QueryError(f"query is missing required field {required!r}")

    from repro.sweeps.protocols import PROTOCOL_BUILDERS
    from repro.workloads import WorkloadSuite

    protocol = query["protocol"]
    if protocol not in PROTOCOL_BUILDERS:
        raise QueryError(
            f"unknown protocol {protocol!r}; valid names: {sorted(PROTOCOL_BUILDERS)}"
        )
    known: Dict[str, object] = {"protocol": protocol}
    for name in _INT_FIELDS:
        if name in query:
            known[name] = _coerce_int(name, query[name])
    for name in ("params", "protocol_params"):
        value = query.get(name, {})
        if not isinstance(value, Mapping):
            raise QueryError(
                f"query field {name!r} must be a mapping, got {type(value).__name__}"
            )
        known[name] = dict(value)
    if "workload" in query:
        known["workload"] = query["workload"]
    try:
        config = SweepConfig(**known)
    except (TypeError, ValueError) as exc:
        raise QueryError(f"invalid query: {exc}") from None
    if config.workload not in WorkloadSuite().names():
        raise QueryError(
            f"unknown workload {config.workload!r}; see `repro workloads list`"
        )
    return config


def render_response(record: ConfigRecord) -> str:
    """The canonical response body for one resolved record.

    Canonical JSON (sorted keys, compact separators) over the record's
    on-disk form plus its config hash: deterministic in the record content
    alone, so a warm store hit and a cold engine resolve of the same config
    hash produce byte-identical bodies (``tests/service`` and the CI smoke
    leg both hold a literal comparison over this).
    """
    payload = {
        "schema": RESPONSE_SCHEMA,
        "hash": record.config.config_hash(),
        "record": record.as_dict(),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def parse_response(text: str) -> Dict[str, object]:
    """Parse one response body back into its payload dict, schema-checked."""
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise QueryError(f"response is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise QueryError("response is not a JSON object")
    schema = payload.get("schema")
    if schema != RESPONSE_SCHEMA:
        raise QueryError(
            f"response schema {schema!r} is not supported "
            f"(this client reads schema {RESPONSE_SCHEMA})"
        )
    if "hash" not in payload or "record" not in payload:
        raise QueryError("response is missing its hash/record fields")
    return payload


def experiment_queries(
    experiment_id: str, scale=None, *, limit: Optional[int] = None
) -> List[SweepConfig]:
    """The campaign cells of one experiment, as queryable configs.

    Every E1–E11 plan already *is* a list of content-hashable measurement
    specs (see :mod:`repro.experiments.campaign`), so the service can answer
    any campaign cell: this helper returns the deduplicated spec list of one
    experiment at ``scale`` (default ``QUICK``), optionally truncated to the
    first ``limit`` cells.  Render-only experiments (E7/E8) plan no
    measurements and raise :class:`QueryError` instead of returning an empty
    sweep silently.
    """
    from repro.experiments.campaign import dedup_specs
    from repro.experiments.config import QUICK
    from repro.experiments.registry import DEFINITIONS

    try:
        definition = DEFINITIONS[experiment_id.upper()]
    except KeyError:
        raise QueryError(
            f"unknown experiment {experiment_id!r}; valid IDs: {sorted(DEFINITIONS)}"
        ) from None
    specs = dedup_specs(definition.plan(QUICK if scale is None else scale))
    if not specs:
        raise QueryError(
            f"experiment {definition.experiment} plans no measurement specs "
            "(render-only experiment)"
        )
    if limit is not None:
        if limit < 1:
            raise QueryError(f"limit must be >= 1, got {limit}")
        specs = specs[:limit]
    return specs
