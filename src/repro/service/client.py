"""Thin stdlib HTTP client for the results service.

:class:`ServiceClient` speaks the daemon's three endpoints (``/query``,
``/status``, ``/stop``) over ``urllib`` — no new dependencies, symmetric
with the server's stdlib ``http.server``.  :meth:`ServiceClient.query_raw`
returns the response body *bytes* untouched, because the service contract is
byte-level: the CLI prints exactly what the daemon sent, so a warm and a
cold query for the same config hash compare equal with ``cmp``.

:func:`discover_endpoint` reads the endpoint blob a running daemon publishes
into its store (see :func:`repro.service.daemon.serve`), which is how
``repro service query --store DIR`` finds the daemon without being told a
URL.  A stale blob (daemon killed without cleanup) surfaces as the usual
connection error; callers fall back to in-process resolution.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Mapping, Optional, Tuple

from repro.service.api import QueryError
from repro.service.daemon import ENDPOINT_BLOB
from repro.sweeps.store import StoreSchemaError, SweepStore

__all__ = ["ServiceClient", "discover_endpoint"]


def discover_endpoint(store: SweepStore) -> Optional[str]:
    """The endpoint URL a running daemon published into ``store``, if any."""
    try:
        blob = store.load_blob(ENDPOINT_BLOB)
    except StoreSchemaError:
        return None
    if blob is None:
        return None
    endpoint = blob.get("endpoint")
    return endpoint if isinstance(endpoint, str) else None


class ServiceClient:
    """One service endpoint, e.g. ``http://127.0.0.1:8791``."""

    def __init__(self, endpoint: str, *, timeout: float = 300.0) -> None:
        self.endpoint = endpoint.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, payload: Optional[Mapping[str, object]] = None
    ) -> Tuple[int, bytes, Dict[str, str]]:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.endpoint + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read(), dict(response.headers)
        except urllib.error.HTTPError as exc:
            # Error responses still carry a JSON body; connection-level
            # failures (URLError and friends) propagate as OSError.
            return exc.code, exc.read(), dict(exc.headers or {})

    @staticmethod
    def _error_message(body: bytes) -> str:
        try:
            payload = json.loads(body.decode("utf-8"))
            return str(payload["error"])
        except (ValueError, KeyError, UnicodeDecodeError):
            return body.decode("utf-8", errors="replace").strip() or "unknown error"

    def query_raw(self, query: Mapping[str, object]) -> Tuple[bytes, str]:
        """POST one query; returns ``(body_bytes, cache)`` untouched.

        ``cache`` is the daemon's ``X-Repro-Cache`` header (``hit`` or
        ``miss``).  Non-200 answers raise :class:`QueryError` with the
        daemon's error message.
        """
        status, body, headers = self._request("POST", "/query", query)
        if status != 200:
            raise QueryError(self._error_message(body))
        return body, headers.get("X-Repro-Cache", "unknown")

    def status(self) -> Dict[str, object]:
        """GET the daemon's live counters."""
        status, body, _ = self._request("GET", "/status")
        if status != 200:
            raise QueryError(self._error_message(body))
        return json.loads(body.decode("utf-8"))

    def stop(self) -> Dict[str, object]:
        """POST /stop; the daemon acknowledges, then shuts down."""
        status, body, _ = self._request("POST", "/stop")
        if status != 200:
            raise QueryError(self._error_message(body))
        return json.loads(body.decode("utf-8"))
