"""Long-lived results service over the sweep store's memoization tier.

The fourth layer of the execution stack.  The engine made one config fast,
:mod:`repro.sweeps` made a grid fast and resumable, the campaign
(:mod:`repro.experiments.campaign`) made the whole paper one memoized run —
this package turns that shared content-hash-keyed
:class:`~repro.sweeps.store.SweepStore` into something *queryable*: a
persistent worker-pool daemon plus a thin request/response API where
latency/measurement queries are answered straight from the store when a
hashed-config hit exists and computed (and cached) otherwise.

* :func:`~repro.service.api.normalize_query` — one JSON query mapping →
  one :class:`~repro.sweeps.spec.SweepConfig`; equivalent queries (key
  order, string-typed integers, default-valued ``protocol_params``)
  normalize to the same content hash and therefore the same store record;
* :class:`~repro.service.daemon.ResultsService` — store-first resolution
  over a long-lived ``ProcessPoolExecutor`` with single-flight misses;
  responses are bit-for-bit identical to the batch/campaign path for the
  same spec hash, at any worker count;
* :class:`~repro.service.daemon.ServiceServer` / :func:`~repro.service.daemon.serve`
  — the stdlib-HTTP front door (``POST /query``, ``GET /status``,
  ``POST /stop``) publishing its endpoint into the store;
* :class:`~repro.service.client.ServiceClient` — the matching stdlib
  client, returning response bodies byte-for-byte.

The CLI front end is ``repro service start|query|status|stop`` (see
:mod:`repro.cli`); the design and the warm/cold semantics are documented in
``docs/service.md``.
"""

from repro.service.api import (
    RESPONSE_SCHEMA,
    QueryError,
    experiment_queries,
    normalize_query,
    parse_response,
    render_response,
)
from repro.service.client import ServiceClient, discover_endpoint
from repro.service.daemon import (
    ENDPOINT_BLOB,
    ENDPOINT_SCHEMA,
    ResultsService,
    ServiceServer,
    serve,
)

__all__ = [
    "RESPONSE_SCHEMA",
    "QueryError",
    "normalize_query",
    "render_response",
    "parse_response",
    "experiment_queries",
    "ResultsService",
    "ServiceServer",
    "serve",
    "ServiceClient",
    "discover_endpoint",
    "ENDPOINT_BLOB",
    "ENDPOINT_SCHEMA",
]
