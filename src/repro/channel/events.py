"""Slot outcomes and per-slot event records.

Every simulated time slot produces exactly one :class:`SlotOutcome`:

* ``SILENCE`` — no awake station transmitted;
* ``SUCCESS`` — exactly one awake station transmitted (the wake-up problem is
  solved at this slot);
* ``COLLISION`` — two or more awake stations transmitted.

The paper's channel provides **no collision detection**, so listening stations
cannot distinguish ``SILENCE`` from ``COLLISION``; that distinction lives in
the :mod:`repro.channel.feedback` models, while the outcome recorded in the
trace is always the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Optional

__all__ = ["SlotOutcome", "SlotRecord"]


class SlotOutcome(Enum):
    """Ground-truth outcome of a single channel slot."""

    SILENCE = "silence"
    SUCCESS = "success"
    COLLISION = "collision"

    @staticmethod
    def from_transmitter_count(count: int) -> "SlotOutcome":
        """Map a transmitter count to the corresponding outcome."""
        if count < 0:
            raise ValueError(f"transmitter count cannot be negative, got {count}")
        if count == 0:
            return SlotOutcome.SILENCE
        if count == 1:
            return SlotOutcome.SUCCESS
        return SlotOutcome.COLLISION

    @property
    def is_success(self) -> bool:
        """True iff the slot solved the wake-up problem."""
        return self is SlotOutcome.SUCCESS


@dataclass(frozen=True)
class SlotRecord:
    """Ground-truth record of one simulated slot.

    Attributes
    ----------
    slot:
        Absolute (global-clock) slot index.
    transmitters:
        The set of stations that transmitted in this slot.
    outcome:
        The resulting :class:`SlotOutcome`.
    awake:
        Number of stations awake during the slot (diagnostic; not visible to
        the protocol).
    """

    slot: int
    transmitters: FrozenSet[int]
    outcome: SlotOutcome
    awake: int = 0

    def __post_init__(self) -> None:
        expected = SlotOutcome.from_transmitter_count(len(self.transmitters))
        if expected is not self.outcome:
            raise ValueError(
                f"outcome {self.outcome} inconsistent with {len(self.transmitters)} transmitters"
            )

    @property
    def winner(self) -> Optional[int]:
        """The successful station, or ``None`` for silence/collision slots."""
        if self.outcome is SlotOutcome.SUCCESS:
            return next(iter(self.transmitters))
        return None
