"""Wake-up patterns: which stations wake up, and when.

A *wake-up pattern* is the adversary's move in the paper's model: an
assignment of wake-up slots to a subset of at most ``k`` stations out of the
universe ``[1, n]``.  The pattern determines

* ``s`` — the first slot at which some station is awake (the paper measures
  latency from ``s``), and
* the contender set available at every subsequent slot.

Patterns are immutable value objects; the generators that build interesting
patterns (adversarial, random, bursty, ...) live in
:mod:`repro.channel.adversary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro._util import validate_positive_int, validate_station_id

__all__ = ["WakeupPattern", "encode_wake_times", "decode_wake_times"]


def encode_wake_times(wake_times: Mapping[int, int]) -> str:
    """Encode a ``station -> wake slot`` mapping as a compact sortable string.

    The format is ``"station@slot"`` pairs joined by ``";"``, sorted by
    station ID — e.g. ``"3@0;5@2;7@2"``.  It is the canonical flat form used
    wherever a wake-up pattern has to survive a CSV/JSON round trip (worst-case
    grid exports, adversarial-search certificates and checkpoints):
    :func:`decode_wake_times` inverts it exactly, so an exported row can be
    replayed bit for bit.
    """
    return ";".join(f"{int(u)}@{int(t)}" for u, t in sorted(wake_times.items()))


def decode_wake_times(text: str) -> Dict[int, int]:
    """Inverse of :func:`encode_wake_times`.

    Raises :class:`ValueError` for anything that is not a well-formed
    encoding, so corrupted export rows fail loudly instead of replaying a
    different pattern.
    """
    if not isinstance(text, str) or not text:
        raise ValueError(f"not a wake-times encoding: {text!r}")
    out: Dict[int, int] = {}
    for part in text.split(";"):
        station_text, sep, slot_text = part.partition("@")
        if not sep:
            raise ValueError(f"malformed wake-times entry {part!r} in {text!r}")
        try:
            station, slot = int(station_text), int(slot_text)
        except ValueError:
            raise ValueError(f"malformed wake-times entry {part!r} in {text!r}") from None
        if station in out:
            raise ValueError(f"station {station} appears twice in {text!r}")
        out[station] = slot
    return out


@dataclass(frozen=True)
class WakeupPattern:
    """An immutable assignment of wake-up slots to stations.

    Parameters
    ----------
    n:
        Universe size; station IDs are ``1..n``.
    wake_times:
        Mapping ``station -> wake slot`` (absolute global slots, ``>= 0``).
        Only awakened stations appear; stations not in the mapping sleep
        forever and never transmit.

    Examples
    --------
    >>> p = WakeupPattern(8, {3: 0, 5: 2, 7: 2})
    >>> p.first_wake, p.k
    (0, 3)
    >>> p.awake_at(1)
    (3,)
    >>> p.awake_at(2)
    (3, 5, 7)
    """

    n: int
    wake_times: Mapping[int, int]

    def __post_init__(self) -> None:
        validate_positive_int(self.n, "n")
        cleaned: Dict[int, int] = {}
        for station, t in self.wake_times.items():
            station = validate_station_id(station, self.n)
            t = int(t)
            if t < 0:
                raise ValueError(f"wake time must be >= 0, got {t} for station {station}")
            cleaned[station] = t
        if not cleaned:
            raise ValueError("a wake-up pattern must awaken at least one station")
        object.__setattr__(self, "wake_times", dict(cleaned))

    # -- basic accessors ---------------------------------------------------

    @property
    def k(self) -> int:
        """Number of awakened stations."""
        return len(self.wake_times)

    @property
    def stations(self) -> Tuple[int, ...]:
        """Awakened stations, sorted by ID."""
        return tuple(sorted(self.wake_times))

    @property
    def first_wake(self) -> int:
        """``s`` — the first slot with at least one awake station."""
        return min(self.wake_times.values())

    @property
    def last_wake(self) -> int:
        """The latest wake-up slot in the pattern."""
        return max(self.wake_times.values())

    def wake_time(self, station: int) -> Optional[int]:
        """Wake slot of ``station``, or ``None`` if it never wakes."""
        return self.wake_times.get(station)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(station, wake_time)`` pairs sorted by wake time then ID."""
        return iter(sorted(self.wake_times.items(), key=lambda kv: (kv[1], kv[0])))

    def __len__(self) -> int:
        return len(self.wake_times)

    # -- derived views -----------------------------------------------------

    def awake_at(self, slot: int) -> Tuple[int, ...]:
        """Stations awake at ``slot`` (woken at or before it), sorted by ID."""
        return tuple(sorted(u for u, t in self.wake_times.items() if t <= slot))

    def awake_count_at(self, slot: int) -> int:
        """Number of stations awake at ``slot``."""
        return sum(1 for t in self.wake_times.values() if t <= slot)

    def wake_array(self) -> np.ndarray:
        """Return ``(stations, wake_times)`` as two aligned numpy arrays."""
        stations = np.array(self.stations, dtype=np.int64)
        times = np.array([self.wake_times[int(u)] for u in stations], dtype=np.int64)
        return np.stack([stations, times])

    def shifted(self, offset: int) -> "WakeupPattern":
        """Return a copy with every wake time shifted by ``offset`` slots."""
        if self.first_wake + offset < 0:
            raise ValueError("shift would produce a negative wake time")
        return WakeupPattern(self.n, {u: t + offset for u, t in self.wake_times.items()})

    def normalized(self) -> "WakeupPattern":
        """Return a copy shifted so that the first wake-up happens at slot 0."""
        return self.shifted(-self.first_wake)

    def restricted(self, stations: Iterable[int]) -> "WakeupPattern":
        """Return the pattern restricted to the given stations (must be non-empty)."""
        keep = {int(s) for s in stations}
        sub = {u: t for u, t in self.wake_times.items() if u in keep}
        return WakeupPattern(self.n, sub)

    def describe(self) -> str:
        """One-line human-readable summary used in traces and reports."""
        spread = self.last_wake - self.first_wake
        return (
            f"WakeupPattern(n={self.n}, k={self.k}, s={self.first_wake}, "
            f"spread={spread})"
        )
