"""Clock models: what round number a station sees.

The paper distinguishes the *globally synchronous* model (every station reads
the same global round number — the setting of all three scenarios studied)
from the *locally synchronous* model (each station counts rounds from its own
wake-up).  All of the paper's algorithms assume the global clock; the local
clock is provided so that baseline comparisons (e.g. against the locally
synchronous `O(k log² n)` protocol cited from Chlebus et al.) and ablations
("what breaks without a global clock") can be expressed in the same framework.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["Clock", "GlobalClock", "LocalClock"]


class Clock(ABC):
    """Maps absolute simulation time to the round number a station perceives."""

    #: Human-readable name used in reports.
    name: str = "abstract"

    @abstractmethod
    def perceived_round(self, *, global_slot: int, wake_time: int) -> int:
        """Round number that a station woken at ``wake_time`` sees at ``global_slot``.

        Raises :class:`ValueError` if the station is not yet awake.
        """

    def _check_awake(self, global_slot: int, wake_time: int) -> None:
        if global_slot < wake_time:
            raise ValueError(
                f"station is not awake at slot {global_slot} (wakes at {wake_time})"
            )


@dataclass(frozen=True)
class GlobalClock(Clock):
    """The paper's setting: every station reads the true global round number."""

    name: str = "global"

    def perceived_round(self, *, global_slot: int, wake_time: int) -> int:
        self._check_awake(global_slot, wake_time)
        return global_slot


@dataclass(frozen=True)
class LocalClock(Clock):
    """Locally synchronous model: rounds are counted from the station's wake-up.

    The perceived round is ``global_slot - wake_time`` (0 at the wake-up slot).
    """

    name: str = "local"

    def perceived_round(self, *, global_slot: int, wake_time: int) -> int:
        self._check_awake(global_slot, wake_time)
        return global_slot - wake_time
