"""Adversarial and stochastic wake-up pattern generators.

The wake-up problem is a game against an adversary who chooses *which* (at
most ``k``) stations wake up and *when*.  All bounds in the paper are
worst-case over this choice, so the benchmark harness needs a library of
adversarial strategies:

* structured patterns targeting the weak points of specific algorithms
  (waking just after a selective-family boundary to maximize the wait of
  ``wait_and_go``; waking inside a window so Scenario C stations must idle
  until the next window boundary);
* stochastic patterns (uniform, bursty/batched) for average-case curves;
* a randomized *search* over patterns that reports the worst latency found;
* the adaptive replacement adversary from the proof of Theorem 2.1, which
  certifies an empirical lower bound against any deterministic protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import RngLike, as_generator, validate_k_n
from repro.channel.protocols import DeterministicProtocol
from repro.channel.simulator import WakeupResult, run_deterministic
from repro.channel.wakeup import WakeupPattern

__all__ = [
    "simultaneous_pattern",
    "staggered_pattern",
    "batched_pattern",
    "uniform_random_pattern",
    "window_boundary_pattern",
    "family_boundary_pattern",
    "random_station_subset",
    "worst_case_search",
    "AdaptiveLowerBoundAdversary",
    "PATTERN_GENERATORS",
]


def random_station_subset(n: int, k: int, rng: RngLike = None) -> List[int]:
    """Pick ``k`` distinct station IDs uniformly at random from ``[1, n]``."""
    k, n = validate_k_n(k, n)
    gen = as_generator(rng)
    return sorted(int(u) + 1 for u in gen.choice(n, size=k, replace=False))


def simultaneous_pattern(
    n: int, k: int, *, start: int = 0, stations: Optional[Sequence[int]] = None, rng: RngLike = None
) -> WakeupPattern:
    """All ``k`` stations wake at the same slot (the classical synchronized case)."""
    k, n = validate_k_n(k, n)
    chosen = list(stations) if stations is not None else random_station_subset(n, k, rng)
    return WakeupPattern(n, {u: start for u in chosen})


def staggered_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    gap: int = 1,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Stations wake one after another, ``gap`` slots apart.

    With a large ``gap`` this stresses the non-synchronized aspect of the
    model: late wakers join while the early ones are already deep into their
    schedules.
    """
    k, n = validate_k_n(k, n)
    if gap < 0:
        raise ValueError(f"gap must be >= 0, got {gap}")
    chosen = list(stations) if stations is not None else random_station_subset(n, k, rng)
    return WakeupPattern(n, {u: start + i * gap for i, u in enumerate(chosen)})


def batched_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    batch_size: int = 4,
    batch_gap: int = 16,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Stations wake in bursts of ``batch_size``, bursts separated by ``batch_gap`` slots."""
    k, n = validate_k_n(k, n)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if batch_gap < 0:
        raise ValueError(f"batch_gap must be >= 0, got {batch_gap}")
    chosen = list(stations) if stations is not None else random_station_subset(n, k, rng)
    times = {}
    for i, u in enumerate(chosen):
        batch = i // batch_size
        times[u] = start + batch * batch_gap
    return WakeupPattern(n, times)


def uniform_random_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    window: int = 128,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Stations wake at independent uniform times in ``[start, start + window)``.

    One station is pinned to ``start`` so that ``s`` is deterministic and the
    latency of different runs is comparable.
    """
    k, n = validate_k_n(k, n)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    gen = as_generator(rng)
    chosen = list(stations) if stations is not None else random_station_subset(n, k, gen)
    times = {u: start + int(gen.integers(0, window)) for u in chosen}
    times[chosen[0]] = start
    return WakeupPattern(n, times)


def window_boundary_pattern(
    n: int,
    k: int,
    *,
    window_length: int,
    start: int = 0,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Wake each station one slot *after* a window boundary.

    Targets Scenario C: the protocol makes stations that wake inside a window
    of ``log log n`` slots idle until the next boundary (the map ``µ(σ)``), so
    waking at ``p·loglog n + 1`` maximizes the forced idle time.  Stations are
    spread over consecutive windows.
    """
    k, n = validate_k_n(k, n)
    if window_length < 1:
        raise ValueError(f"window_length must be >= 1, got {window_length}")
    chosen = list(stations) if stations is not None else random_station_subset(n, k, rng)
    offset = 1 if window_length > 1 else 0
    times = {u: start + i * window_length + offset for i, u in enumerate(chosen)}
    return WakeupPattern(n, times)


def family_boundary_pattern(
    n: int,
    k: int,
    *,
    boundaries: Sequence[int],
    start: int = 0,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Wake each station one slot after a selective-family boundary.

    Targets Scenario B's ``wait_and_go``: a station waking just after the
    first slot of a family must stay silent until the next family starts,
    which is the worst case for its waiting time.  ``boundaries`` are the
    absolute slots at which families begin (obtainable from
    :meth:`repro.core.scenario_b.WaitAndGo.family_boundaries`).
    """
    k, n = validate_k_n(k, n)
    if not boundaries:
        raise ValueError("boundaries must be non-empty")
    chosen = list(stations) if stations is not None else random_station_subset(n, k, rng)
    sorted_bounds = sorted(int(b) for b in boundaries)
    times = {}
    for i, u in enumerate(chosen):
        b = sorted_bounds[i % len(sorted_bounds)]
        times[u] = max(start, b + 1)
    # Ensure at least one station defines s = start for comparability.
    times[chosen[0]] = start
    return WakeupPattern(n, times)


#: Registry of the named stochastic/structured generators used by experiments.
PATTERN_GENERATORS: Dict[str, Callable[..., WakeupPattern]] = {
    "simultaneous": simultaneous_pattern,
    "staggered": staggered_pattern,
    "batched": batched_pattern,
    "uniform": uniform_random_pattern,
}


def worst_case_search(
    protocol: DeterministicProtocol,
    n: int,
    k: int,
    *,
    trials: int = 32,
    window: int = 256,
    max_slots: int = 200_000,
    rng: RngLike = None,
    include_structured: bool = True,
) -> Tuple[WakeupResult, WakeupPattern]:
    """Randomized search for a bad wake-up pattern for a given protocol.

    Draws ``trials`` random patterns (uniform wake times over ``window``,
    random station subsets, plus — when ``include_structured`` — the
    simultaneous and fully staggered patterns), runs the protocol on each, and
    returns the run with the largest latency together with its pattern.

    This does not certify the true worst case (that is what the theory is
    for); it provides the empirical "max over adversary moves" column in the
    experiment tables.  All candidates are resolved in one shared scan by the
    batch engine (:func:`repro.engine.run_deterministic_batch`), so raising
    ``trials`` is cheap.
    """
    from repro.engine import run_deterministic_batch

    k, n = validate_k_n(k, n)
    gen = as_generator(rng)
    candidates: List[WakeupPattern] = []
    if include_structured:
        candidates.append(simultaneous_pattern(n, k, rng=gen))
        candidates.append(staggered_pattern(n, k, gap=1, rng=gen))
        candidates.append(staggered_pattern(n, k, gap=max(1, window // max(k, 1)), rng=gen))
    for _ in range(trials):
        candidates.append(uniform_random_pattern(n, k, window=window, rng=gen))

    batch = run_deterministic_batch(protocol, candidates, max_slots=max_slots)
    # Unsolved rows count as max_slots; ties keep the earliest candidate,
    # matching the sequential search this replaced.
    effective = np.where(batch.solved, batch.latency, max_slots)
    worst_index = int(np.argmax(effective))
    return batch[worst_index], candidates[worst_index]


@dataclass
class AdaptiveLowerBoundAdversary:
    """The replacement adversary from the proof of Theorem 2.1.

    Given a deterministic protocol and the synchronized setting (all chosen
    stations wake at slot 0 — the lower bound holds even there), the adversary
    maintains a contender set ``X`` of size ``k``.  It repeatedly:

    1. runs the protocol on ``X`` and finds the first isolating slot ``r`` and
       isolated station ``x``;
    2. replaces ``x`` with a fresh station ``y`` from the complement that has
       not been used before, obtaining ``X'``;
    3. repeats, for up to ``min(k, n - k)`` iterations.

    Each iteration forces the protocol to "spend" a distinct isolating slot,
    which is the counting at the heart of the ``min{k, n-k+1}`` lower bound.
    The adversary reports the set of distinct isolating slots observed and the
    worst (largest) first-isolation latency among the constructed contender
    sets — an empirical certificate that the protocol cannot beat the bound.

    Parameters
    ----------
    protocol:
        Any deterministic protocol.
    max_slots:
        Horizon per run.
    """

    protocol: DeterministicProtocol
    max_slots: int = 500_000

    def run(
        self, k: int, *, initial: Optional[Sequence[int]] = None, rng: RngLike = None
    ) -> "AdversaryReport":
        """Execute the replacement process and return a report."""
        n = self.protocol.n
        k, n = validate_k_n(k, n)
        gen = as_generator(rng)
        if initial is not None:
            current = sorted(int(u) for u in initial)
            if len(current) != k:
                raise ValueError(f"initial set must have size k={k}, got {len(current)}")
        else:
            current = random_station_subset(n, k, gen)
        fresh = [u for u in range(1, n + 1) if u not in set(current)]
        gen.shuffle(fresh)

        isolating_slots: List[int] = []
        latencies: List[int] = []
        histories: List[Tuple[int, ...]] = []
        iterations = min(k, n - k) if n > k else 1
        iterations = max(1, iterations)

        for _ in range(iterations):
            pattern = WakeupPattern(n, {u: 0 for u in current})
            result = run_deterministic(self.protocol, pattern, max_slots=self.max_slots)
            histories.append(tuple(current))
            if not result.solved:
                # The protocol never isolates this set within the horizon: the
                # adversary has already won; record a sentinel latency.
                latencies.append(self.max_slots)
                break
            assert result.success_slot is not None and result.winner is not None
            isolating_slots.append(result.success_slot)
            latencies.append(result.require_solved())
            if not fresh:
                break
            # Following the proof, prefer a replacement that does NOT transmit at
            # the isolating round: then the old round cannot isolate the new set,
            # forcing the protocol to reserve a different round for it.
            transmitting_at_r = {
                u
                for u in fresh
                if self.protocol.transmits(u, 0, result.success_slot)
            }
            preferred = [u for u in fresh if u not in transmitting_at_r]
            replacement = preferred[-1] if preferred else fresh[-1]
            fresh.remove(replacement)
            current = sorted(set(current) - {result.winner} | {replacement})

        return AdversaryReport(
            n=n,
            k=k,
            protocol=self.protocol.describe(),
            distinct_isolating_slots=len(set(isolating_slots)),
            max_latency=max(latencies) if latencies else 0,
            latencies=tuple(latencies),
            contender_sets=tuple(histories),
        )


@dataclass(frozen=True)
class AdversaryReport:
    """Result of one run of :class:`AdaptiveLowerBoundAdversary`."""

    n: int
    k: int
    protocol: str
    distinct_isolating_slots: int
    max_latency: int
    latencies: Tuple[int, ...]
    contender_sets: Tuple[Tuple[int, ...], ...]

    @property
    def theoretical_bound(self) -> int:
        """The paper's ``min{k, n-k+1}`` lower bound for these parameters."""
        return min(self.k, self.n - self.k + 1)
