"""Execution traces: the per-slot history of a simulation.

A trace records every slot from the first wake-up to the end of the
simulation.  Traces are optional (the vectorized simulator skips building them
unless asked) but invaluable for debugging protocols, rendering the paper's
Figure-2 style column-alignment pictures, and for the invariants checked in
tests (e.g. "no station transmits before its wake-up slot").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.channel.events import SlotOutcome, SlotRecord

__all__ = ["ExecutionTrace"]


@dataclass
class ExecutionTrace:
    """An append-only list of :class:`SlotRecord` for one simulation run."""

    records: List[SlotRecord] = field(default_factory=list)

    def append(self, record: SlotRecord) -> None:
        """Append a record; slots must be appended in strictly increasing order."""
        if self.records and record.slot <= self.records[-1].slot:
            raise ValueError(
                f"slot {record.slot} appended out of order (last was {self.records[-1].slot})"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SlotRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> SlotRecord:
        return self.records[index]

    # -- queries -------------------------------------------------------------

    def first_success(self) -> Optional[SlotRecord]:
        """The first successful slot, or ``None`` if no success was recorded."""
        for record in self.records:
            if record.outcome.is_success:
                return record
        return None

    def outcome_counts(self) -> dict:
        """Return ``{outcome: count}`` over all recorded slots."""
        counts = {outcome: 0 for outcome in SlotOutcome}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    def collision_slots(self) -> List[int]:
        """Slots at which a collision occurred."""
        return [r.slot for r in self.records if r.outcome is SlotOutcome.COLLISION]

    def silent_slots(self) -> List[int]:
        """Slots at which nobody transmitted."""
        return [r.slot for r in self.records if r.outcome is SlotOutcome.SILENCE]

    def transmissions_of(self, station: int) -> List[int]:
        """Slots at which ``station`` transmitted."""
        return [r.slot for r in self.records if station in r.transmitters]

    def busiest_slot(self) -> Optional[SlotRecord]:
        """The record with the most simultaneous transmitters (ties: earliest)."""
        best: Optional[SlotRecord] = None
        for record in self.records:
            if best is None or len(record.transmitters) > len(best.transmitters):
                best = record
        return best

    def to_rows(self) -> List[Tuple[int, str, int]]:
        """Return ``(slot, outcome, #transmitters)`` rows for reporting."""
        return [(r.slot, r.outcome.value, len(r.transmitters)) for r in self.records]
