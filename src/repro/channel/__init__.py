"""Multiple-access channel substrate: slotted channel, simulator, adversaries.

The paper's model is a *slotted* shared channel: in every time slot each
station either transmits or listens; a slot is **successful** iff exactly one
station transmits, in which case every station (awake or not-yet-awake, per
the paper's wake-up semantics the message is heard by all) receives the
message.  With two or more transmitters the messages collide; in the
no-collision-detection model (the one used by the paper) a collided slot is
indistinguishable from a silent one.

This subpackage implements that model exactly and provides:

* :mod:`repro.channel.events` — slot outcomes and per-slot records;
* :mod:`repro.channel.feedback` — feedback models (none / collision detection);
* :mod:`repro.channel.wakeup` — wake-up patterns (who wakes when);
* :mod:`repro.channel.channel` — the slot-by-slot channel core;
* :mod:`repro.channel.simulator` — execution engines for deterministic
  protocols (vectorized) and randomized policies (slot loop);
* :mod:`repro.channel.adversary` — adversarial and stochastic wake-up pattern
  generators, including the lower-bound adversary of Theorem 2.1;
* :mod:`repro.channel.clock` — global and local clock views.
"""

from repro.channel.events import SlotOutcome, SlotRecord
from repro.channel.feedback import (
    FeedbackModel,
    NoCollisionDetection,
    CollisionDetection,
    FeedbackSignal,
)
from repro.channel.wakeup import WakeupPattern
from repro.channel.channel import Channel
from repro.channel.protocols import (
    DeterministicProtocol,
    FeedbackVectorizedPolicy,
    RandomizedPolicy,
    StationState,
)
from repro.channel.trace import ExecutionTrace
from repro.channel.clock import GlobalClock, LocalClock
from repro.channel.simulator import (
    WakeupResult,
    Simulator,
    run_deterministic,
    run_randomized,
)
from repro.channel.adversary import (
    simultaneous_pattern,
    staggered_pattern,
    batched_pattern,
    uniform_random_pattern,
    window_boundary_pattern,
    family_boundary_pattern,
    worst_case_search,
    AdaptiveLowerBoundAdversary,
    PATTERN_GENERATORS,
)

__all__ = [
    "SlotOutcome",
    "SlotRecord",
    "FeedbackModel",
    "NoCollisionDetection",
    "CollisionDetection",
    "FeedbackSignal",
    "WakeupPattern",
    "Channel",
    "DeterministicProtocol",
    "FeedbackVectorizedPolicy",
    "RandomizedPolicy",
    "StationState",
    "ExecutionTrace",
    "GlobalClock",
    "LocalClock",
    "WakeupResult",
    "Simulator",
    "run_deterministic",
    "run_randomized",
    "simultaneous_pattern",
    "staggered_pattern",
    "batched_pattern",
    "uniform_random_pattern",
    "window_boundary_pattern",
    "family_boundary_pattern",
    "worst_case_search",
    "AdaptiveLowerBoundAdversary",
    "PATTERN_GENERATORS",
]
