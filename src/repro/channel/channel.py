"""The slot-by-slot multiple-access channel core.

:class:`Channel` implements the exact collision semantics of the paper's
model: a slot succeeds iff exactly one station transmits.  It is deliberately
tiny — the interesting machinery lives in the protocols and the simulator —
but it is the single place where the success/collision rule is encoded, and
both simulation paths (the slot loop for randomized policies and the
vectorized path for deterministic schedules) are tested against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro._util import validate_positive_int, validate_station_ids
from repro.channel.events import SlotOutcome, SlotRecord
from repro.channel.feedback import FeedbackModel, FeedbackSignal, NoCollisionDetection
from repro.channel.trace import ExecutionTrace

__all__ = ["Channel"]


@dataclass
class Channel:
    """A slotted multiple-access channel without central control.

    Parameters
    ----------
    n:
        Number of stations that can be attached (IDs ``1..n``).
    feedback:
        Feedback model determining what stations observe after each slot.
        Defaults to the paper's :class:`NoCollisionDetection`.
    record_trace:
        If True (default), every resolved slot is appended to :attr:`trace`.

    Examples
    --------
    >>> ch = Channel(8)
    >>> ch.resolve_slot(0, transmitters=[3])
    SlotOutcome.SUCCESS
    >>> ch.resolve_slot(1, transmitters=[3, 5])
    SlotOutcome.COLLISION
    >>> ch.success_slot, ch.winner
    (0, 3)
    """

    n: int
    feedback: FeedbackModel = field(default_factory=NoCollisionDetection)
    record_trace: bool = True

    trace: ExecutionTrace = field(default_factory=ExecutionTrace, init=False)
    success_slot: Optional[int] = field(default=None, init=False)
    winner: Optional[int] = field(default=None, init=False)
    slots_resolved: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        validate_positive_int(self.n, "n")

    @property
    def has_succeeded(self) -> bool:
        """True once some slot carried exactly one transmission."""
        return self.success_slot is not None

    def resolve_slot(
        self,
        slot: int,
        transmitters: Iterable[int],
        *,
        awake: int = 0,
    ) -> SlotOutcome:
        """Resolve one slot given the set of transmitting stations.

        Parameters
        ----------
        slot:
            Absolute slot index (must be strictly increasing across calls when
            tracing is enabled).
        transmitters:
            Stations transmitting in this slot.  IDs are validated against
            ``[1, n]`` and must be distinct.
        awake:
            Optional diagnostic count of awake stations, stored in the trace.

        Returns
        -------
        SlotOutcome
            The ground-truth outcome of the slot.
        """
        ids = validate_station_ids(transmitters, self.n)
        outcome = SlotOutcome.from_transmitter_count(len(ids))
        if outcome is SlotOutcome.SUCCESS and not self.has_succeeded:
            self.success_slot = int(slot)
            self.winner = ids[0]
        if self.record_trace:
            self.trace.append(
                SlotRecord(
                    slot=int(slot),
                    transmitters=frozenset(ids),
                    outcome=outcome,
                    awake=int(awake),
                )
            )
        self.slots_resolved += 1
        return outcome

    def signal_for(self, outcome: SlotOutcome, *, transmitted: bool) -> FeedbackSignal:
        """Translate a ground-truth outcome into the station-visible signal."""
        return self.feedback.observe(outcome, transmitted=transmitted)

    def reset(self) -> None:
        """Clear all state so the channel can be reused for another run."""
        self.trace = ExecutionTrace()
        self.success_slot = None
        self.winner = None
        self.slots_resolved = 0
