"""Protocol interfaces: the contract between algorithms and the simulator.

Two kinds of protocols exist in the paper's landscape:

* **Deterministic protocols** (all three scenarios of the paper): a station's
  decision to transmit at global slot ``t`` is a deterministic function of its
  ID, its wake-up time and ``t``.  They are *oblivious* — no feedback other
  than "has a success happened yet" (which merely stops the protocol) is used.
  The simulator exploits this: it asks each awake station for its transmit
  slots over a horizon and finds the first slot with exactly one transmitter,
  without a slot-by-slot Python loop.

* **Randomized policies** (Section 6 and the stochastic baselines): a station
  transmits with some probability that may depend on its ID, wake-up time,
  the global slot, and — for feedback-dependent baselines such as binary
  exponential backoff — the history of signals it observed.  Oblivious
  policies (no feedback dependence) expose their probabilities as a matrix
  over ``(station, slot)`` via :meth:`RandomizedPolicy.transmit_probability_matrix`,
  which is the query the batched randomized engine
  (:func:`repro.engine.run_randomized_batch`) issues once per chunk;
  feedback-driven policies declare :attr:`RandomizedPolicy.feedback_driven`
  and are resolved slot by slot instead.

Concrete deterministic protocols live in :mod:`repro.core`; randomized ones in
:mod:`repro.core.randomized` and :mod:`repro.baselines`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional

import numpy as np

from repro._util import validate_positive_int
from repro.channel.feedback import FeedbackSignal

__all__ = [
    "DeterministicProtocol",
    "RandomizedPolicy",
    "FeedbackVectorizedPolicy",
    "StationState",
    "zero_before_wake",
]


def zero_before_wake(matrix: np.ndarray, slots: np.ndarray, wakes) -> np.ndarray:
    """Zero the entries of a (pairs × slots) probability matrix before wake-up.

    Support helper for vectorized
    :meth:`RandomizedPolicy.transmit_probability_matrix` overrides, enforcing
    the contract that a sleeping station transmits with probability 0.
    Short-circuits when every pair is already awake at the window start (the
    common case in every chunk after the first).
    """
    wakes = np.asarray(wakes, dtype=np.int64)
    if slots.size == 0 or wakes.size == 0 or int(wakes.max()) <= int(slots[0]):
        return matrix
    # Function-level import: the protocol layer must stay importable without
    # the engine package.  The host surface of the environment-selected
    # backend fuses the compare-and-zero when it can (numexpr); the protocol
    # interface is signature-fixed, so the engines' backend= argument cannot
    # reach this call.
    from repro.engine.backend import get_backend

    return get_backend(None).host.zero_before_wake(matrix, slots, wakes)


class DeterministicProtocol(ABC):
    """A deterministic, oblivious transmission protocol over universe ``[1, n]``.

    Subclasses must implement :meth:`transmits`; they *should* override
    :meth:`transmit_slots` with a vectorized implementation when the protocol
    is used at scale (the default implementation calls :meth:`transmits` once
    per slot, which is correct but slow).  Protocols on the batch engine's hot
    path additionally override :meth:`batch_transmit_slots`, the multi-station
    query :mod:`repro.engine` issues once per chunk.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # A subclass that overrides the scalar queries but inherits a
        # vectorized batch_transmit_slots from an intermediate base would
        # answer batch queries with the *base's* schedule.  Reset such
        # subclasses to the generic fallback, which routes through their own
        # transmit_slots and is always consistent.
        overrides_scalar = "transmits" in cls.__dict__ or "transmit_slots" in cls.__dict__
        inherits_vectorized = (
            "batch_transmit_slots" not in cls.__dict__
            and cls.batch_transmit_slots is not DeterministicProtocol.batch_transmit_slots
        )
        if overrides_scalar and inherits_vectorized:
            cls.batch_transmit_slots = DeterministicProtocol.batch_transmit_slots

    def __init__(self, n: int) -> None:
        self.n = validate_positive_int(n, "n")

    #: Human-readable name used in reports and experiment tables.
    name: str = "deterministic"

    @abstractmethod
    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        """Return True iff ``station`` (woken at ``wake_time``) transmits at ``slot``.

        Implementations must return ``False`` for every ``slot < wake_time``
        (a sleeping station cannot transmit); the test suite enforces this
        invariant for every protocol in the library.
        """

    def transmit_slots(
        self, station: int, wake_time: int, start: int, stop: int
    ) -> np.ndarray:
        """Absolute slots in ``[start, stop)`` at which the station transmits.

        The default implementation evaluates :meth:`transmits` slot by slot.
        """
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        slots = [t for t in range(lo, hi) if self.transmits(station, wake_time, t)]
        return np.asarray(slots, dtype=np.int64)

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Transmit slots for many ``(station, wake_time)`` pairs at once.

        The batch engine (:mod:`repro.engine`) resolves B executions in one
        chunked scan; this is the query it issues per chunk.  ``stations`` and
        ``wakes`` are aligned int arrays describing the pairs; the window
        ``[start, stop)`` is shared by all of them.

        Returns two aligned int64 arrays ``(pair_index, slots)``: pair
        ``pair_index[i]`` transmits at absolute slot ``slots[i]``.  No
        ordering is guaranteed across pairs; a pair may appear zero or many
        times.  Each (pair, slot) combination must appear at most once —
        duplicates would corrupt the engine's transmitter counts.

        The default evaluates :meth:`transmit_slots` pair by pair, which is
        correct for every protocol; schedule-backed protocols and the
        matrix-backed Scenario C protocols (via
        :meth:`~repro.core.waking_matrix.TransmissionMatrix.membership_for_pairs`)
        override it with a fully vectorized computation.
        """
        idx_pieces = []
        slot_pieces = []
        for j in range(len(stations)):
            slots = self.transmit_slots(int(stations[j]), int(wakes[j]), start, stop)
            if slots.size:
                idx_pieces.append(np.full(slots.size, j, dtype=np.int64))
                slot_pieces.append(slots)
        if not slot_pieces:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(idx_pieces), np.concatenate(slot_pieces)

    def describe(self) -> str:
        """One-line description used in experiment tables."""
        return f"{self.name}(n={self.n})"


class StationState:
    """Mutable per-station state owned by a :class:`RandomizedPolicy`.

    A plain attribute bag; policies may subclass or just stuff attributes in.
    """

    def __init__(self, station: int, wake_time: int) -> None:
        self.station = station
        self.wake_time = wake_time
        self.transmission_count = 0
        self.collision_count = 0
        self.extra: dict[str, Any] = {}


class RandomizedPolicy(ABC):
    """A (possibly feedback-driven) randomized transmission policy.

    Subclasses must implement the scalar :meth:`transmit_probability`.
    Oblivious policies — probability a function of ``(station, wake_time,
    slot)`` only — *should* override :meth:`transmit_probability_matrix` with
    a closed-form vectorized implementation when used at scale; it is the
    query the batched randomized engine (:func:`repro.engine.run_randomized_batch`)
    issues once per chunk.  Policies whose probabilities react to channel
    feedback must carry :attr:`feedback_driven` (set automatically for
    subclasses that override :meth:`observe`), which makes the batch engine
    fall back to the exact slot-loop per pattern.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # Mirror of the DeterministicProtocol guard: a subclass that overrides
        # the scalar probability but inherits a vectorized matrix from an
        # intermediate base would answer batch queries with the *base's*
        # probabilities.  Reset such subclasses to the generic derivation,
        # which routes through their own transmit_probability.
        overrides_scalar = "transmit_probability" in cls.__dict__
        inherits_vectorized = (
            "transmit_probability_matrix" not in cls.__dict__
            and cls.transmit_probability_matrix
            is not RandomizedPolicy.transmit_probability_matrix
        )
        if overrides_scalar and inherits_vectorized:
            cls.transmit_probability_matrix = RandomizedPolicy.transmit_probability_matrix
        # A subclass that reacts to feedback (overrides observe) almost
        # certainly feeds it back into its probabilities; treat it as
        # feedback-driven unless it explicitly declares otherwise.
        if "observe" in cls.__dict__ and "feedback_driven" not in cls.__dict__:
            cls.feedback_driven = True

    def __init__(self, n: int) -> None:
        self.n = validate_positive_int(n, "n")

    #: Human-readable name used in reports and experiment tables.
    name: str = "randomized"

    #: Whether the policy requires collision detection to behave as intended.
    requires_collision_detection: bool = False

    #: Whether transmit probabilities depend on channel feedback (signals seen
    #: via :meth:`observe`).  Feedback-driven policies cannot be resolved from
    #: a precomputed probability matrix; the batch engine runs them through
    #: the slot-loop reference engine, one independent generator per pattern.
    feedback_driven: bool = False

    def create_state(self, station: int, wake_time: int) -> StationState:
        """Create the per-station state at wake-up time."""
        return StationState(station, wake_time)

    @abstractmethod
    def transmit_probability(self, state: StationState, slot: int) -> float:
        """Probability that the station transmits at global slot ``slot``.

        Must be in ``[0, 1]``; called only for slots at or after the station's
        wake-up.
        """

    def transmit_probability_matrix(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Transmit probabilities for many ``(station, wake_time)`` pairs at once.

        The batched randomized engine (:func:`repro.engine.run_randomized_batch`)
        resolves B patterns in one chunked scan; this is the query it issues
        per chunk.  ``stations`` and ``wakes`` are aligned int arrays
        describing the pairs; the window ``[start, stop)`` is shared by all of
        them.

        Returns a float array of shape ``(len(stations), stop - start)``:
        entry ``[j, t - start]`` is the probability that pair ``j`` transmits
        at absolute slot ``t``.  Entries at slots before a pair's wake-up must
        be ``0.0`` (a sleeping station cannot transmit); all entries must lie
        in ``[0, 1]``.

        The default derives the matrix from the scalar
        :meth:`transmit_probability` with a fresh state per pair, which is
        correct exactly for oblivious policies (probability a function of
        station, wake time and slot only).  Feedback-driven policies
        (:attr:`feedback_driven`) are never asked for a matrix.
        """
        start, stop = int(start), int(stop)
        length = max(0, stop - start)
        matrix = np.zeros((len(stations), length), dtype=np.float64)
        for j in range(len(stations)):
            wake = int(wakes[j])
            state = self.create_state(int(stations[j]), wake)
            for slot in range(max(start, wake), stop):
                matrix[j, slot - start] = self.transmit_probability(state, slot)
        return matrix

    def observe(
        self,
        state: StationState,
        slot: int,
        signal: FeedbackSignal,
        transmitted: bool,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Update per-station state after a slot (default: book-keeping only).

        ``rng`` is the *pattern's own* generator — the same per-pattern child
        stream the simulator draws the transmit decisions from.  Policies
        whose updates are stochastic (backoff windows, splitting coins) must
        draw from it when it is provided, so that a pattern's outcome is a
        function of its own stream alone; drawing from a policy-owned
        generator instead couples every pattern resolved through one policy
        instance, making batched outcomes order-dependent.  The simulator
        always passes it; direct callers may omit it.
        """
        if transmitted:
            state.transmission_count += 1
            if signal is FeedbackSignal.COLLISION:
                state.collision_count += 1

    def describe(self) -> str:
        """One-line description used in experiment tables."""
        return f"{self.name}(n={self.n})"


class FeedbackVectorizedPolicy(ABC):
    """Mixin interface: a feedback-driven policy the batch engine can vectorize.

    Feedback-driven policies cannot be resolved from a precomputed
    probability matrix — each slot's decisions depend on the previous slots'
    outcomes.  They *can* still be batched across patterns, because one
    pattern's state never influences another's: the engine
    (:func:`repro.engine.run_feedback_batch`) advances B patterns one slot at
    a time, and this mixin is the per-slot vectorized query surface it uses
    instead of per-station :class:`StationState` dicts.

    State lives in arrays aligned with the engine's flattened ``(pattern,
    station, wake)`` pair arrays — conceptually one row of per-station
    counters per pattern — allocated by :meth:`batch_create_state` and
    treated as opaque by the engine.  The contract mirrors the scalar
    surface exactly:

    * :meth:`batch_transmit_mask` answers "who transmits at this slot" for
      every pair at once.  It must be *deterministic given the state* — the
      vectorized surface covers policies whose per-state transmit
      probability is 0 or 1 (binary exponential backoff, tree splitting:
      the classical feedback protocols), with the engine burning the slot
      loop's one-uniform-per-transmitter draws to keep streams aligned.
    * :meth:`batch_observe` applies one slot of feedback to every pair at
      once, drawing any randomness through the engine-provided ``draw``
      callable, which consumes each pattern's child stream in exactly the
      slot loop's order.

    Subclasses that override the scalar behaviour (``transmit_probability``,
    ``observe`` or ``create_state``) without overriding the vectorized trio
    would answer batch queries with the *base's* semantics; an
    ``__init_subclass__`` guard (mirroring the deterministic and randomized
    ones) clears :attr:`feedback_vectorized` on such subclasses, so the
    engine falls back to the slot-loop reference path, which is always
    consistent.
    """

    #: Whether the engine may use the vectorized surface for this class.
    #: Cleared automatically on subclasses that override scalar behaviour
    #: but inherit the vectorized methods.
    feedback_vectorized: bool = True

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        overrides_scalar = any(
            name in cls.__dict__
            for name in ("transmit_probability", "observe", "create_state")
        )
        inherits_vectorized = not any(
            name in cls.__dict__
            for name in ("batch_create_state", "batch_transmit_mask", "batch_observe")
        )
        if overrides_scalar and inherits_vectorized and "feedback_vectorized" not in cls.__dict__:
            cls.feedback_vectorized = False

    @abstractmethod
    def batch_create_state(
        self, pair_row: np.ndarray, pair_station: np.ndarray, pair_wake: np.ndarray
    ) -> Any:
        """Allocate vectorized state for the given pairs (at their wake times).

        The arrays are the engine's flattened batch: ``pair_row[i]`` is the
        pattern index of pair ``i``, ``pair_station[i]`` its station ID and
        ``pair_wake[i]`` its wake-up slot; pairs are row-major and, within a
        row, in the pattern's own station order.  Every per-pair entry must
        equal what :meth:`RandomizedPolicy.create_state` produces for a
        freshly woken station.  The returned object is passed back verbatim
        to the other two queries.
        """

    @abstractmethod
    def batch_transmit_mask(self, state: Any, slot: int, awake: np.ndarray) -> np.ndarray:
        """Boolean mask over pairs: who transmits at ``slot``.

        ``awake`` marks the pairs whose station is awake at ``slot`` in a
        still-unresolved pattern; entries outside it are ignored by the
        engine.  The mask must be exactly the pairs whose scalar
        ``transmit_probability`` would return 1.0 (the engine burns one
        uniform per masked pair from the pair's pattern stream, matching the
        slot loop's draw discipline).
        """

    @abstractmethod
    def batch_observe(
        self,
        state: Any,
        slot: int,
        signals: np.ndarray,
        transmitted: np.ndarray,
        awake: np.ndarray,
        draw,
    ) -> None:
        """Apply one slot of feedback to every awake pair at once.

        ``signals`` is an int8 array of per-pair
        :attr:`~repro.channel.feedback.FeedbackSignal.code` values (already
        mapped through the channel's feedback model); ``transmitted`` and
        ``awake`` are boolean masks over pairs.  Only awake pairs may be
        updated — the scalar loop never calls ``observe`` for sleeping
        stations.

        ``draw(pair_indices)`` returns one uniform in ``[0, 1)`` per
        requested pair, drawn from each pair's own pattern stream in
        ascending pair order — exactly where the slot loop's scalar
        ``observe(..., rng=...)`` calls would have drawn them.  Implementations
        must request draws for exactly the pairs whose scalar counterpart
        would draw, in the same order (pass indices ascending).
        """
