"""Simulation engines for the slotted multiple-access channel.

Two execution paths are provided, both implementing exactly the same channel
semantics (a slot succeeds iff exactly one awake station transmits):

* :func:`run_deterministic` — for oblivious deterministic protocols
  (everything in :mod:`repro.core`).  Each awake station is asked for its
  transmit slots over a chunk of the timeline (a vectorized query), the
  per-slot transmitter counts are accumulated with :func:`numpy.add.at`, and
  the first slot with count 1 is the answer.  The timeline is scanned in
  geometrically growing chunks so short executions stay cheap and long ones
  do not re-scan earlier slots.

* :func:`run_randomized` — a slot-by-slot loop for randomized policies, which
  may be feedback-driven.  It is the *reference* engine: the batched
  randomized engine (:func:`repro.engine.run_randomized_batch`) reproduces
  its outcomes bit for bit given the same per-pattern generators, and the
  property suite holds the two to that contract.

Both return a :class:`WakeupResult`; the equivalence of the per-pattern and
batched paths (:mod:`repro.engine`) is covered by the test suite for both
protocol kinds.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro._util import RngLike, as_generator
from repro.channel.channel import Channel
from repro.channel.events import SlotOutcome, SlotRecord
from repro.channel.feedback import FeedbackModel, FeedbackSignal, NoCollisionDetection
from repro.channel.protocols import DeterministicProtocol, RandomizedPolicy
from repro.channel.trace import ExecutionTrace
from repro.channel.wakeup import WakeupPattern

__all__ = ["WakeupResult", "Simulator", "run_deterministic", "run_randomized"]

#: Default cap on the number of slots simulated after the first wake-up.
DEFAULT_MAX_SLOTS = 2_000_000

#: Initial chunk length for the chunked deterministic scan.
DEFAULT_CHUNK = 1024


@dataclass(frozen=True)
class WakeupResult:
    """Outcome of one simulated execution of a wake-up protocol.

    Attributes
    ----------
    solved:
        True iff some slot carried exactly one transmission within the horizon.
    n, k:
        Universe size and number of awakened stations.
    first_wake:
        ``s``, the slot of the first wake-up.
    success_slot:
        Absolute slot of the first success (``None`` if unsolved).
    winner:
        The station that transmitted alone (``None`` if unsolved).
    latency:
        ``success_slot - first_wake`` — the quantity every bound in the paper
        is stated in (``None`` if unsolved).
    slots_examined:
        Number of slots the simulator looked at (diagnostic).
    protocol:
        Name of the protocol/policy that produced the run.
    trace:
        Optional per-slot trace (only when requested).
    """

    solved: bool
    n: int
    k: int
    first_wake: int
    success_slot: Optional[int]
    winner: Optional[int]
    latency: Optional[int]
    slots_examined: int
    protocol: str
    trace: Optional[ExecutionTrace] = None

    def require_solved(self) -> int:
        """Return the latency, raising if the run did not solve wake-up."""
        if not self.solved or self.latency is None:
            raise RuntimeError(
                f"protocol {self.protocol!r} did not solve wake-up within the horizon"
            )
        return self.latency


def _winner_at(
    protocol: DeterministicProtocol, pattern: WakeupPattern, slot: int
) -> Optional[int]:
    """Identify the unique transmitter at ``slot``, if there is exactly one."""
    transmitters = [
        u
        for u, wake in pattern.wake_times.items()
        if wake <= slot and protocol.transmits(u, wake, slot)
    ]
    if len(transmitters) == 1:
        return transmitters[0]
    return None


def _build_trace(
    protocol: DeterministicProtocol,
    pattern: WakeupPattern,
    start: int,
    stop: int,
) -> ExecutionTrace:
    """Materialize a full per-slot trace for ``[start, stop)`` (small runs only)."""
    trace = ExecutionTrace()
    for slot in range(start, stop):
        transmitters = frozenset(
            u
            for u, wake in pattern.wake_times.items()
            if wake <= slot and protocol.transmits(u, wake, slot)
        )
        trace.append(
            SlotRecord(
                slot=slot,
                transmitters=transmitters,
                outcome=SlotOutcome.from_transmitter_count(len(transmitters)),
                awake=pattern.awake_count_at(slot),
            )
        )
    return trace


def run_deterministic(
    protocol: DeterministicProtocol,
    pattern: WakeupPattern,
    *,
    max_slots: int = DEFAULT_MAX_SLOTS,
    chunk: int = DEFAULT_CHUNK,
    record_trace: bool = False,
) -> WakeupResult:
    """Simulate a deterministic protocol against a wake-up pattern.

    Parameters
    ----------
    protocol:
        Any :class:`~repro.channel.protocols.DeterministicProtocol` over the
        same universe size as ``pattern``.
    pattern:
        The adversary's wake-up pattern.
    max_slots:
        Horizon: number of slots after the first wake-up to examine before
        giving up (an unsolved result is returned, not an exception).
    chunk:
        Initial chunk length for the scan; chunks double as the scan advances.
    record_trace:
        If True, a full per-slot trace from the first wake-up to the success
        slot (or the horizon) is attached to the result.  Quadratic-ish in
        cost; intended for small diagnostic runs.

    Returns
    -------
    WakeupResult
    """
    if protocol.n != pattern.n:
        raise ValueError(
            f"protocol universe n={protocol.n} does not match pattern n={pattern.n}"
        )
    start = pattern.first_wake
    horizon = start + int(max_slots)
    stations = pattern.wake_times

    chunk_start = start
    chunk_len = max(16, int(chunk))
    slots_examined = 0

    while chunk_start < horizon:
        chunk_stop = min(horizon, chunk_start + chunk_len)
        length = chunk_stop - chunk_start
        counts = np.zeros(length, dtype=np.int32)
        for station, wake in stations.items():
            if wake >= chunk_stop:
                continue
            slots = protocol.transmit_slots(station, wake, chunk_start, chunk_stop)
            if slots.size:
                np.add.at(counts, slots - chunk_start, 1)
        slots_examined += length
        singles = np.flatnonzero(counts == 1)
        if singles.size:
            success_slot = int(chunk_start + singles[0])
            winner = _winner_at(protocol, pattern, success_slot)
            # The vectorized count said "exactly one"; re-deriving the winner via
            # transmits() doubles as a consistency check between the two paths.
            if winner is None:
                raise RuntimeError(
                    "internal inconsistency: vectorized count found a singleton slot "
                    "but per-slot evaluation did not"
                )
            trace = (
                _build_trace(protocol, pattern, start, success_slot + 1)
                if record_trace
                else None
            )
            return WakeupResult(
                solved=True,
                n=pattern.n,
                k=pattern.k,
                first_wake=start,
                success_slot=success_slot,
                winner=winner,
                latency=success_slot - start,
                slots_examined=slots_examined,
                protocol=protocol.describe(),
                trace=trace,
            )
        chunk_start = chunk_stop
        chunk_len = min(chunk_len * 2, 1 << 20)

    trace = _build_trace(protocol, pattern, start, min(horizon, start + 4096)) if record_trace else None
    return WakeupResult(
        solved=False,
        n=pattern.n,
        k=pattern.k,
        first_wake=start,
        success_slot=None,
        winner=None,
        latency=None,
        slots_examined=slots_examined,
        protocol=protocol.describe(),
        trace=trace,
    )


def run_randomized(
    policy: RandomizedPolicy,
    pattern: WakeupPattern,
    *,
    rng: RngLike = None,
    max_slots: int = DEFAULT_MAX_SLOTS,
    feedback: Optional[FeedbackModel] = None,
    record_trace: bool = False,
) -> WakeupResult:
    """Simulate a randomized policy against a wake-up pattern.

    The channel feedback model defaults to the paper's no-collision-detection
    model; policies that declare ``requires_collision_detection`` get the
    ternary model automatically unless one is passed explicitly.

    The per-slot draw discipline — slots ascending, stations in pattern
    order, one uniform per awake station with positive probability — is a
    compatibility contract: :func:`repro.engine.run_randomized_batch`
    consumes generators in exactly this order so batches reproduce these
    outcomes bit for bit.
    """
    if policy.n != pattern.n:
        raise ValueError(
            f"policy universe n={policy.n} does not match pattern n={pattern.n}"
        )
    gen = as_generator(rng)
    if feedback is None:
        from repro.channel.feedback import CollisionDetection

        feedback = CollisionDetection() if policy.requires_collision_detection else NoCollisionDetection()

    channel = Channel(pattern.n, feedback=feedback, record_trace=record_trace)
    start = pattern.first_wake
    horizon = start + int(max_slots)
    states: Dict[int, object] = {}

    # Policies written against the pre-rng observe signature (4 positional
    # arguments) remain simulatable: detect once whether this policy's
    # observe accepts the pattern generator and only pass it if so.  Such
    # policies cannot draw from the pattern stream, so their outcomes stay
    # policy-stream dependent — the library's own policies all accept rng.
    try:
        inspect.signature(policy.observe).bind(
            None, 0, FeedbackSignal.QUIET, False, rng=None
        )
        observe_accepts_rng = True
    except TypeError:
        observe_accepts_rng = False

    for slot in range(start, horizon):
        # Wake stations whose time has come.
        for station, wake in pattern.wake_times.items():
            if wake == slot or (wake < slot and station not in states):
                if station not in states:
                    states[station] = policy.create_state(station, wake)
        awake = [u for u, wake in pattern.wake_times.items() if wake <= slot]
        transmitters = []
        for station in awake:
            state = states[station]
            p = policy.transmit_probability(state, slot)  # type: ignore[arg-type]
            if p < 0.0 or p > 1.0:
                raise ValueError(
                    f"{policy.describe()} returned probability {p} outside [0, 1]"
                )
            if p > 0.0 and gen.random() < p:
                transmitters.append(station)
        outcome = channel.resolve_slot(slot, transmitters, awake=len(awake))
        for station in awake:
            transmitted = station in transmitters
            signal = channel.signal_for(outcome, transmitted=transmitted)
            # The pattern's generator is handed to observe so stochastic
            # feedback updates (backoff windows, splitting coins) draw from
            # the same per-pattern stream as the transmit decisions.
            if observe_accepts_rng:
                policy.observe(states[station], slot, signal, transmitted, rng=gen)  # type: ignore[arg-type]
            else:
                policy.observe(states[station], slot, signal, transmitted)  # type: ignore[arg-type]
        if outcome is SlotOutcome.SUCCESS:
            return WakeupResult(
                solved=True,
                n=pattern.n,
                k=pattern.k,
                first_wake=start,
                success_slot=slot,
                winner=channel.winner,
                latency=slot - start,
                slots_examined=slot - start + 1,
                protocol=policy.describe(),
                trace=channel.trace if record_trace else None,
            )

    return WakeupResult(
        solved=False,
        n=pattern.n,
        k=pattern.k,
        first_wake=start,
        success_slot=None,
        winner=None,
        latency=None,
        slots_examined=horizon - start,
        protocol=policy.describe(),
        trace=channel.trace if record_trace else None,
    )


@dataclass
class Simulator:
    """Convenience façade bundling simulation options.

    Examples
    --------
    >>> from repro.core.round_robin import RoundRobin
    >>> from repro.channel import WakeupPattern
    >>> sim = Simulator(max_slots=10_000)
    >>> result = sim.run(RoundRobin(16), WakeupPattern(16, {5: 0, 9: 3}))
    >>> result.solved
    True
    """

    max_slots: int = DEFAULT_MAX_SLOTS
    chunk: int = DEFAULT_CHUNK
    record_trace: bool = False
    feedback: Optional[FeedbackModel] = None
    rng: RngLike = None

    def run(self, protocol, pattern: WakeupPattern) -> WakeupResult:
        """Run either kind of protocol, dispatching on its type."""
        if isinstance(protocol, DeterministicProtocol):
            return run_deterministic(
                protocol,
                pattern,
                max_slots=self.max_slots,
                chunk=self.chunk,
                record_trace=self.record_trace,
            )
        if isinstance(protocol, RandomizedPolicy):
            return run_randomized(
                protocol,
                pattern,
                rng=self.rng,
                max_slots=self.max_slots,
                feedback=self.feedback,
                record_trace=self.record_trace,
            )
        raise TypeError(
            f"expected a DeterministicProtocol or RandomizedPolicy, got {type(protocol).__name__}"
        )

    def run_many(self, protocol, patterns) -> List[WakeupResult]:
        """Run the same protocol against a list of patterns."""
        return [self.run(protocol, p) for p in patterns]
