"""Channel feedback models.

The amount of feedback a station receives after each slot is a central
modelling choice (see the paper's Introduction).  The paper works in the
**weakest** model: no collision detection, so a listening station only learns
whether a successful transmission occurred (in which case it receives the
message) — silence and collision are indistinguishable.  Some of the baseline
algorithms we compare against (binary exponential backoff, Capetanakis tree
splitting) require the stronger ternary feedback with collision detection, so
both models are provided and every simulation records which one was used.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.channel.events import SlotOutcome

__all__ = [
    "FeedbackSignal",
    "FeedbackModel",
    "NoCollisionDetection",
    "CollisionDetection",
    "OUTCOME_CODES",
    "signal_table",
]


class FeedbackSignal(Enum):
    """What a station perceives at the end of a slot.

    ``QUIET`` is deliberately ambiguous: under :class:`NoCollisionDetection`
    it covers both true silence and collisions.

    Each signal carries a small integer :attr:`code` so vectorized engines
    can represent per-station signals as int8 arrays (see
    :func:`signal_table`).
    """

    QUIET = "quiet"
    SUCCESS = "success"
    COLLISION = "collision"

    @property
    def code(self) -> int:
        """Stable integer code used by vectorized signal arrays."""
        return _SIGNAL_CODES[self]


#: Stable integer codes for :class:`FeedbackSignal` members (the values the
#: batched feedback engine hands to ``batch_observe`` as an int8 array).
_SIGNAL_CODES = {
    FeedbackSignal.QUIET: 0,
    FeedbackSignal.SUCCESS: 1,
    FeedbackSignal.COLLISION: 2,
}

#: Stable integer codes for :class:`~repro.channel.events.SlotOutcome`
#: members, indexing the first axis of :func:`signal_table`.
OUTCOME_CODES = {
    SlotOutcome.SILENCE: 0,
    SlotOutcome.SUCCESS: 1,
    SlotOutcome.COLLISION: 2,
}


def signal_table(model: "FeedbackModel") -> np.ndarray:
    """Tabulate a feedback model as an int8 array ``lut[outcome, transmitted]``.

    The batched feedback engine (:func:`repro.engine.run_feedback_batch`)
    resolves one slot for B patterns at a time; translating the per-row slot
    outcome into per-station signals through :meth:`FeedbackModel.observe`
    station by station would reintroduce the scalar loop.  Because every
    model in the library is a pure function of ``(outcome, transmitted)``,
    six scalar calls tabulate it exactly: entry ``[OUTCOME_CODES[outcome],
    int(transmitted)]`` holds ``model.observe(outcome,
    transmitted=transmitted).code``.
    """
    table = np.empty((3, 2), dtype=np.int8)
    for outcome, row in OUTCOME_CODES.items():
        for transmitted in (False, True):
            signal = model.observe(outcome, transmitted=transmitted)
            table[row, int(transmitted)] = signal.code
    return table


class FeedbackModel(ABC):
    """Maps the ground-truth slot outcome to what stations can observe."""

    #: Human-readable name used in reports.
    name: str = "abstract"

    @abstractmethod
    def observe(self, outcome: SlotOutcome, *, transmitted: bool) -> FeedbackSignal:
        """Return the signal perceived by a station.

        Parameters
        ----------
        outcome:
            Ground-truth outcome of the slot.
        transmitted:
            Whether the observing station itself transmitted in this slot.
            (In every model a station knows its own action; in the paper's
            model a successful transmitter also learns of its success because
            all stations receive the message.)
        """

    @property
    @abstractmethod
    def detects_collisions(self) -> bool:
        """True iff the model lets stations distinguish collision from silence."""


@dataclass(frozen=True)
class NoCollisionDetection(FeedbackModel):
    """The paper's model: no feedback on collisions.

    A station observes ``SUCCESS`` when some station transmits alone (it
    receives the message), and ``QUIET`` otherwise — whether the slot was
    silent or a collision.
    """

    name: str = "no-collision-detection"

    def observe(self, outcome: SlotOutcome, *, transmitted: bool) -> FeedbackSignal:
        if outcome is SlotOutcome.SUCCESS:
            return FeedbackSignal.SUCCESS
        return FeedbackSignal.QUIET

    @property
    def detects_collisions(self) -> bool:
        return False


@dataclass(frozen=True)
class CollisionDetection(FeedbackModel):
    """Ternary feedback: silence / success / collision are all distinguishable.

    Not used by the paper's algorithms; needed by baseline protocols such as
    binary exponential backoff and tree-splitting, and by the lower bound of
    Greenberg–Winograd which holds *even with* collision detection.
    """

    name: str = "collision-detection"

    def observe(self, outcome: SlotOutcome, *, transmitted: bool) -> FeedbackSignal:
        if outcome is SlotOutcome.SUCCESS:
            return FeedbackSignal.SUCCESS
        if outcome is SlotOutcome.COLLISION:
            return FeedbackSignal.COLLISION
        return FeedbackSignal.QUIET

    @property
    def detects_collisions(self) -> bool:
        return True
