"""Channel feedback models.

The amount of feedback a station receives after each slot is a central
modelling choice (see the paper's Introduction).  The paper works in the
**weakest** model: no collision detection, so a listening station only learns
whether a successful transmission occurred (in which case it receives the
message) — silence and collision are indistinguishable.  Some of the baseline
algorithms we compare against (binary exponential backoff, Capetanakis tree
splitting) require the stronger ternary feedback with collision detection, so
both models are provided and every simulation records which one was used.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum

from repro.channel.events import SlotOutcome

__all__ = [
    "FeedbackSignal",
    "FeedbackModel",
    "NoCollisionDetection",
    "CollisionDetection",
]


class FeedbackSignal(Enum):
    """What a station perceives at the end of a slot.

    ``QUIET`` is deliberately ambiguous: under :class:`NoCollisionDetection`
    it covers both true silence and collisions.
    """

    QUIET = "quiet"
    SUCCESS = "success"
    COLLISION = "collision"


class FeedbackModel(ABC):
    """Maps the ground-truth slot outcome to what stations can observe."""

    #: Human-readable name used in reports.
    name: str = "abstract"

    @abstractmethod
    def observe(self, outcome: SlotOutcome, *, transmitted: bool) -> FeedbackSignal:
        """Return the signal perceived by a station.

        Parameters
        ----------
        outcome:
            Ground-truth outcome of the slot.
        transmitted:
            Whether the observing station itself transmitted in this slot.
            (In every model a station knows its own action; in the paper's
            model a successful transmitter also learns of its success because
            all stations receive the message.)
        """

    @property
    @abstractmethod
    def detects_collisions(self) -> bool:
        """True iff the model lets stations distinguish collision from silence."""


@dataclass(frozen=True)
class NoCollisionDetection(FeedbackModel):
    """The paper's model: no feedback on collisions.

    A station observes ``SUCCESS`` when some station transmits alone (it
    receives the message), and ``QUIET`` otherwise — whether the slot was
    silent or a collision.
    """

    name: str = "no-collision-detection"

    def observe(self, outcome: SlotOutcome, *, transmitted: bool) -> FeedbackSignal:
        if outcome is SlotOutcome.SUCCESS:
            return FeedbackSignal.SUCCESS
        return FeedbackSignal.QUIET

    @property
    def detects_collisions(self) -> bool:
        return False


@dataclass(frozen=True)
class CollisionDetection(FeedbackModel):
    """Ternary feedback: silence / success / collision are all distinguishable.

    Not used by the paper's algorithms; needed by baseline protocols such as
    binary exponential backoff and tree-splitting, and by the lower bound of
    Greenberg–Winograd which holds *even with* collision detection.
    """

    name: str = "collision-detection"

    def observe(self, outcome: SlotOutcome, *, transmitted: bool) -> FeedbackSignal:
        if outcome is SlotOutcome.SUCCESS:
            return FeedbackSignal.SUCCESS
        if outcome is SlotOutcome.COLLISION:
            return FeedbackSignal.COLLISION
        return FeedbackSignal.QUIET

    @property
    def detects_collisions(self) -> bool:
        return True
