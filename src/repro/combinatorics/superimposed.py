"""Kautz–Singleton superimposed codes (k-cover-free families).

A binary code ``C = {c_1, ..., c_n}`` of length ``L`` is *k-superimposed*
(equivalently, the supports form a ``k``-cover-free family) if no codeword is
covered by the bit-wise OR of any ``k`` others.  Superimposed codes give
*strongly selective* families: reading the code column-wise, column ``t`` is
the set of stations whose codeword has a 1 in position ``t``; for any ``k+1``
stations and any designated one of them there is a column containing the
designated station and none of the other ``k``.

The classical construction (Kautz & Singleton, 1964) concatenates a
Reed–Solomon outer code with the identity inner code:

1. pick a prime ``q`` and degree ``d`` with ``q**(d+1) >= n`` and ``q >= k*d + 1``;
2. encode station ``u`` as the degree-``d`` polynomial ``p_u`` over GF(q)
   whose base-``q`` digits are ``u-1``;
3. the codeword of ``u`` is the indicator of the set
   ``{(x, p_u(x)) : x ∈ GF(q)}`` inside the ``q × q`` grid.

Two distinct polynomials of degree ``≤ d`` agree on at most ``d`` points, so a
codeword (weight ``q``) can share at most ``k·d < q`` positions with the union
of ``k`` others — the code is ``k``-superimposed.  Length is ``q²``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro._util import ceil_log2, validate_k_n
from repro.combinatorics.finite_field import Polynomial, PrimeField
from repro.combinatorics.primes import next_prime

__all__ = ["SuperimposedCode", "kautz_singleton_code", "code_to_set_family"]


@dataclass(frozen=True)
class SuperimposedCode:
    """A binary superimposed code, stored as a boolean matrix.

    Attributes
    ----------
    n:
        Number of codewords (stations).
    length:
        Code length ``L`` (number of columns when read as a set family).
    strength:
        The cover-freeness parameter ``k`` the construction targets.
    matrix:
        Boolean array of shape ``(n, length)``; row ``u-1`` is the codeword of
        station ``u``.
    q, degree:
        The Reed–Solomon parameters used (prime field size and polynomial
        degree); recorded for reporting and tests.
    """

    n: int
    length: int
    strength: int
    matrix: np.ndarray
    q: int
    degree: int

    def __post_init__(self) -> None:
        if self.matrix.shape != (self.n, self.length):
            raise ValueError(
                f"matrix shape {self.matrix.shape} does not match (n, length)="
                f"({self.n}, {self.length})"
            )

    def codeword(self, station: int) -> np.ndarray:
        """Return the boolean codeword of ``station`` (1-based ID)."""
        if not 1 <= station <= self.n:
            raise ValueError(f"station must be in [1, {self.n}], got {station}")
        return self.matrix[station - 1]

    def weight(self, station: int) -> int:
        """Hamming weight of a codeword (always ``q`` for Kautz–Singleton)."""
        return int(self.codeword(station).sum())


def _choose_parameters(n: int, k: int) -> Tuple[int, int]:
    """Choose Reed–Solomon parameters ``(q, degree)`` for a k-superimposed code.

    We need ``q**(degree+1) >= n`` (enough polynomials to give every station a
    distinct one) and ``q > k * degree`` (so k codewords cannot cover another).
    To keep the length ``q**2`` small we scan degrees and take the smallest
    resulting ``q``.
    """
    best: Tuple[int, int] | None = None
    max_degree = max(1, ceil_log2(max(n, 2)))
    for degree in range(1, max_degree + 1):
        # Smallest q with q^(degree+1) >= n.
        q_floor = int(np.ceil(n ** (1.0 / (degree + 1))))
        q = next_prime(max(q_floor, k * degree + 1, 2))
        # next_prime may round q_floor up past the needed size already; ensure both
        # constraints hold (they do by construction, but be explicit).
        while q ** (degree + 1) < n:
            q = next_prime(q + 1)
        if best is None or q * q < best[0] * best[0]:
            best = (q, degree)
    assert best is not None
    return best


def kautz_singleton_code(n: int, k: int) -> SuperimposedCode:
    """Construct an explicit ``k``-superimposed code with ``n`` codewords.

    Parameters
    ----------
    n:
        Number of codewords (stations), ``n >= 1``.
    k:
        Cover-freeness strength: no codeword is covered by the union of any
        ``k`` others.  ``1 <= k <= n``.

    Returns
    -------
    SuperimposedCode
        Code of length ``q**2`` where ``q = O(k log_k n)``.
    """
    k, n = validate_k_n(k, n)
    if n == 1:
        return SuperimposedCode(
            n=1, length=1, strength=k, matrix=np.ones((1, 1), dtype=bool), q=1, degree=0
        )
    q, degree = _choose_parameters(n, k)
    field = PrimeField(q)
    length = q * q
    matrix = np.zeros((n, length), dtype=bool)
    for station in range(1, n + 1):
        poly = Polynomial.from_integer(field, station - 1, degree)
        evaluations = poly.evaluate_all()
        for x, y in enumerate(evaluations):
            matrix[station - 1, x * q + y] = True
    return SuperimposedCode(n=n, length=length, strength=k, matrix=matrix, q=q, degree=degree)


def code_to_set_family(code: SuperimposedCode):
    """Convert a superimposed code into a :class:`~repro.combinatorics.selectors.SetFamily`.

    Column ``t`` of the code becomes transmission set ``t``: the set of
    stations whose codeword has a 1 in that position.  Columns that are empty
    (no station selected) are dropped since they can never produce a
    successful transmission.
    """
    from repro.combinatorics.selectors import SetFamily

    sets = []
    for t in range(code.length):
        members = np.flatnonzero(code.matrix[:, t])
        if members.size == 0:
            continue
        sets.append(frozenset(int(u) + 1 for u in members))
    return SetFamily(code.n, tuple(sets), label=f"superimposed({code.n},{code.strength})")
