"""Set families, binary selectors and strongly selective families.

A *set family* over the universe ``[n] = {1..n}`` is simply an ordered list of
subsets; each subset is a *transmission set*: the stations allowed to transmit
in the corresponding time slot.  This is the representation shared by
selective families (Section 3 of the paper), the concatenated schedules of
``wait_and_go`` (Section 4), and each row of the transmission matrix
(Section 5).

This module provides the :class:`SetFamily` container plus a few classical
explicit constructions used as baselines and as fallbacks when the randomized
constructions of :mod:`repro.core.selective` are not wanted:

* :func:`singleton_family` — the round-robin family ``{1},{2},...,{n}``;
* :func:`binary_selector` — the bit-wise family that isolates any station out
  of *two* contenders (a ``(n, 2)``-selective family of length ``2⌈log n⌉``);
* :func:`strongly_selective_family` — an explicit ``(n, k)``-strongly-selective
  family built from a Kautz–Singleton superimposed code, of length
  ``O(k² log²_k n)`` (quadratically worse than the existential bound but fully
  constructive);
* :func:`power_of_two_blocks` — utility partitioning used by ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Tuple

import numpy as np

from repro._util import ceil_log2, validate_k_n, validate_positive_int

__all__ = [
    "SetFamily",
    "singleton_family",
    "binary_selector",
    "strongly_selective_family",
    "power_of_two_blocks",
]


@dataclass(frozen=True)
class SetFamily:
    """An ordered family of subsets of the station universe ``[1, n]``.

    Parameters
    ----------
    n:
        Size of the universe; station IDs are ``1..n``.
    sets:
        The ordered transmission sets.  Stored as ``frozenset`` for immutability.
    label:
        Optional human-readable description (e.g. ``"(1024, 8)-selective"``).

    Notes
    -----
    The family doubles as a transmission schedule fragment: station ``u``
    transmits in local slot ``j`` (0-based) iff ``u in sets[j]``.
    :class:`repro.core.schedules.FamilySchedule` wraps a family into a full
    :class:`~repro.core.schedules.TransmissionSchedule`.
    """

    n: int
    sets: Tuple[FrozenSet[int], ...]
    label: str = ""

    def __post_init__(self) -> None:
        validate_positive_int(self.n, "n")
        frozen = tuple(frozenset(int(x) for x in s) for s in self.sets)
        for idx, s in enumerate(frozen):
            for station in s:
                if not 1 <= station <= self.n:
                    raise ValueError(
                        f"set #{idx} contains station {station} outside [1, {self.n}]"
                    )
        object.__setattr__(self, "sets", frozen)

    def __len__(self) -> int:
        return len(self.sets)

    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return iter(self.sets)

    def __getitem__(self, index: int) -> FrozenSet[int]:
        return self.sets[index]

    @property
    def length(self) -> int:
        """Number of transmission sets (= number of time slots consumed)."""
        return len(self.sets)

    def contains(self, station: int, index: int) -> bool:
        """Return True iff ``station`` transmits in local slot ``index``."""
        return station in self.sets[index]

    def membership_matrix(self) -> np.ndarray:
        """Return a boolean matrix ``B`` with ``B[j, u-1] = (u in sets[j])``.

        Shape is ``(length, n)``.  Useful for vectorized simulation: a slot's
        transmitter count over an awake-set bitmask is a single matrix-vector
        product.
        """
        mat = np.zeros((len(self.sets), self.n), dtype=bool)
        for j, s in enumerate(self.sets):
            if s:
                mat[j, np.fromiter((u - 1 for u in s), dtype=np.int64)] = True
        return mat

    def concatenate(self, other: "SetFamily") -> "SetFamily":
        """Concatenate two families over the same universe."""
        if other.n != self.n:
            raise ValueError(
                f"cannot concatenate families over different universes ({self.n} vs {other.n})"
            )
        return SetFamily(
            self.n,
            self.sets + other.sets,
            label=f"{self.label}+{other.label}" if self.label or other.label else "",
        )

    def restricted_to(self, stations: Iterable[int]) -> "SetFamily":
        """Return the family with every set intersected with ``stations``."""
        keep = frozenset(int(s) for s in stations)
        return SetFamily(
            self.n,
            tuple(s & keep for s in self.sets),
            label=f"{self.label}|restricted" if self.label else "restricted",
        )

    def max_set_size(self) -> int:
        """Size of the largest transmission set (0 for an empty family)."""
        return max((len(s) for s in self.sets), default=0)

    def total_membership(self) -> int:
        """Sum of set sizes — total number of (station, slot) transmit grants."""
        return sum(len(s) for s in self.sets)


def singleton_family(n: int) -> SetFamily:
    """Return the round-robin family ``({1}, {2}, ..., {n})``.

    This is trivially an ``(n, k)``-selective family for every ``k`` and is the
    building block of the round-robin arm that the paper interleaves with the
    selective-family arm in Scenarios A and B.
    """
    n = validate_positive_int(n, "n")
    return SetFamily(n, tuple(frozenset({u}) for u in range(1, n + 1)), label=f"round-robin({n})")


def binary_selector(n: int) -> SetFamily:
    """Return the bit-selector family of length ``2 * ceil(log2 n)``.

    For each bit position ``b`` it contains the set of stations whose ID has
    bit ``b`` equal to 1, and the complementary set.  For any two distinct
    awake stations there is a bit on which they differ, hence a set containing
    exactly one of them: the family is ``(n, 2)``-selective.
    """
    n = validate_positive_int(n, "n")
    if n == 1:
        return SetFamily(1, (frozenset({1}),), label="binary-selector(1)")
    bits = ceil_log2(n)
    sets: List[FrozenSet[int]] = []
    for b in range(bits):
        ones = frozenset(u for u in range(1, n + 1) if (u >> b) & 1)
        zeros = frozenset(u for u in range(1, n + 1) if not (u >> b) & 1)
        sets.append(ones)
        sets.append(zeros)
    return SetFamily(n, tuple(sets), label=f"binary-selector({n})")


def power_of_two_blocks(n: int) -> List[Tuple[int, int]]:
    """Partition ``[1, n]`` into blocks of doubling size.

    Returns a list of ``(lo, hi)`` inclusive ranges: ``(1,1), (2,3), (4,7)...``
    Used by ablation schedules that replace selective families with plain
    block scans.
    """
    n = validate_positive_int(n, "n")
    blocks: List[Tuple[int, int]] = []
    lo = 1
    size = 1
    while lo <= n:
        hi = min(n, lo + size - 1)
        blocks.append((lo, hi))
        lo = hi + 1
        size *= 2
    return blocks


def strongly_selective_family(n: int, k: int) -> SetFamily:
    """Explicit ``(n, k)``-strongly-selective family via Kautz–Singleton codes.

    A family is *strongly selective* for ``k`` if for every subset ``X`` of at
    most ``k`` stations and every ``x ∈ X`` there is a set ``F`` with
    ``X ∩ F = {x}`` — every member of every small subset gets isolated, which
    is stronger than the paper's selectivity requirement (some member gets
    isolated).  Strong selectivity is what a ``(k-1)``-cover-free family
    provides, and Kautz–Singleton superimposed codes give an explicit one of
    length ``q²`` with ``q = O(k log_k n)``, i.e. ``O(k² log²_k n)``.

    The construction is deterministic and needs no verification, at the price
    of a quadratically longer family than the existential
    ``O(k log(n/k))`` bound; it is exposed both as a baseline for experiment
    E8 and as a fallback when deterministic explicitness matters more than
    length.
    """
    k, n = validate_k_n(k, n)
    # Importing here avoids a circular import at package load time
    # (superimposed.py imports SetFamily from this module).
    from repro.combinatorics.superimposed import code_to_set_family, kautz_singleton_code

    if k == 1 or n == 1:
        return singleton_family(n)
    code = kautz_singleton_code(n=n, k=k)
    family = code_to_set_family(code)
    return SetFamily(n, family.sets, label=f"kautz-singleton({n},{k})")
