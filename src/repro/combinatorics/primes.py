"""Prime number utilities for explicit combinatorial constructions.

Explicit selective-family constructions (Kautz–Singleton superimposed codes,
polynomial selectors) need primes and prime powers of a prescribed size.  The
sizes involved are tiny by number-theoretic standards (at most a few thousand
for any realistic channel size ``n``), so simple deterministic algorithms —
trial division and an Eratosthenes sieve — are both adequate and easy to
verify.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro._util import validate_positive_int

__all__ = [
    "is_prime",
    "next_prime",
    "primes_up_to",
    "prime_factors",
    "is_prime_power",
    "next_prime_power",
]


def is_prime(x: int) -> bool:
    """Return ``True`` iff ``x`` is a prime number.

    Deterministic trial division; intended for the small values (≲ 10**6)
    arising in code constructions, where it is plenty fast.
    """
    if x < 2:
        return False
    if x < 4:
        return True
    if x % 2 == 0:
        return False
    i = 3
    while i * i <= x:
        if x % i == 0:
            return False
        i += 2
    return True


def next_prime(x: int) -> int:
    """Return the smallest prime ``p >= x`` (``x`` may be any integer)."""
    candidate = max(2, int(x))
    while not is_prime(candidate):
        candidate += 1
    return candidate


def primes_up_to(limit: int) -> List[int]:
    """Return all primes ``<= limit`` using a sieve of Eratosthenes."""
    limit = int(limit)
    if limit < 2:
        return []
    sieve = np.ones(limit + 1, dtype=bool)
    sieve[:2] = False
    for p in range(2, int(limit**0.5) + 1):
        if sieve[p]:
            sieve[p * p :: p] = False
    return [int(p) for p in np.flatnonzero(sieve)]


def prime_factors(x: int) -> Dict[int, int]:
    """Return the prime factorization of ``x`` as ``{prime: exponent}``."""
    x = validate_positive_int(x, "x")
    factors: Dict[int, int] = {}
    d = 2
    while d * d <= x:
        while x % d == 0:
            factors[d] = factors.get(d, 0) + 1
            x //= d
        d += 1 if d == 2 else 2
    if x > 1:
        factors[x] = factors.get(x, 0) + 1
    return factors


def is_prime_power(x: int) -> bool:
    """Return ``True`` iff ``x = p^e`` for a prime ``p`` and ``e >= 1``."""
    if x < 2:
        return False
    return len(prime_factors(x)) == 1


def next_prime_power(x: int) -> int:
    """Return the smallest prime power ``q >= x``.

    Explicit polynomial constructions work over any prime field; we only ever
    *use* prime fields (not extension fields), so in practice this returns the
    next prime unless ``x`` itself is already a prime power such as 4, 8, 9.
    """
    candidate = max(2, int(x))
    while not is_prime_power(candidate):
        candidate += 1
    return candidate
