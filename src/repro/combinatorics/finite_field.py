"""Minimal prime-field arithmetic and polynomials over GF(p).

The explicit selective-family constructions in :mod:`repro.combinatorics.superimposed`
encode each station ID as a low-degree polynomial over a prime field and use
the polynomial's evaluation table as a codeword (the classic Reed–Solomon /
Kautz–Singleton construction).  We only need:

* modular arithmetic in GF(p) for prime ``p`` (no extension fields), and
* evaluation of dense polynomials with coefficients in GF(p).

Both are implemented directly so the library has no dependency beyond numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


from repro.combinatorics.primes import is_prime

__all__ = ["PrimeField", "Polynomial"]


@dataclass(frozen=True)
class PrimeField:
    """The prime field GF(p).

    Parameters
    ----------
    p:
        A prime modulus.

    Examples
    --------
    >>> gf = PrimeField(7)
    >>> gf.add(5, 4)
    2
    >>> gf.mul(3, 5)
    1
    >>> gf.inverse(3)
    5
    """

    p: int

    def __post_init__(self) -> None:
        if not is_prime(self.p):
            raise ValueError(f"PrimeField modulus must be prime, got {self.p}")

    @property
    def order(self) -> int:
        """Number of field elements."""
        return self.p

    def elements(self) -> range:
        """Return an iterable over all field elements ``0..p-1``."""
        return range(self.p)

    def validate(self, a: int) -> int:
        """Reduce ``a`` into canonical range ``[0, p)``."""
        return int(a) % self.p

    def add(self, a: int, b: int) -> int:
        """Field addition."""
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        """Field subtraction."""
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        return (a * b) % self.p

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation ``a**e`` (``e >= 0``)."""
        if e < 0:
            return self.pow(self.inverse(a), -e)
        return pow(a % self.p, e, self.p)

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of a nonzero element."""
        a = a % self.p
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.mul(a, self.inverse(b))


@dataclass(frozen=True)
class Polynomial:
    """A dense polynomial with coefficients in a prime field.

    Coefficients are stored little-endian: ``coeffs[i]`` multiplies ``x**i``.

    Examples
    --------
    >>> gf = PrimeField(5)
    >>> poly = Polynomial(gf, (1, 2, 3))  # 1 + 2x + 3x^2
    >>> poly(0), poly(1), poly(2)
    (1, 1, 2)
    """

    field: PrimeField
    coeffs: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "coeffs", tuple(self.field.validate(c) for c in self.coeffs)
        )
        if len(self.coeffs) == 0:
            object.__setattr__(self, "coeffs", (0,))

    @property
    def degree(self) -> int:
        """Degree of the polynomial (degree of the zero polynomial is 0)."""
        for i in range(len(self.coeffs) - 1, -1, -1):
            if self.coeffs[i] != 0:
                return i
        return 0

    def __call__(self, x: int) -> int:
        """Evaluate the polynomial at ``x`` by Horner's rule."""
        x = self.field.validate(x)
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * x + c) % self.field.p
        return acc

    def evaluate_all(self) -> List[int]:
        """Evaluate the polynomial at every field element, in order.

        This is the codeword used by the Kautz–Singleton construction.
        """
        return [self(x) for x in self.field.elements()]

    @staticmethod
    def from_integer(field: PrimeField, value: int, degree: int) -> "Polynomial":
        """Encode a non-negative integer as a polynomial of given max degree.

        The integer is written in base ``p``; its digits become the
        coefficients.  Distinct integers below ``p**(degree+1)`` map to
        distinct polynomials, which is exactly the injectivity that the code
        construction needs.
        """
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        if degree < 0:
            raise ValueError(f"degree must be non-negative, got {degree}")
        limit = field.p ** (degree + 1)
        if value >= limit:
            raise ValueError(
                f"value {value} does not fit in {degree + 1} base-{field.p} digits"
            )
        digits = []
        v = value
        for _ in range(degree + 1):
            digits.append(v % field.p)
            v //= field.p
        return Polynomial(field, tuple(digits))
