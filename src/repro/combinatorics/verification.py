"""Verification of selectivity and cover-freeness properties.

The paper's algorithms rest on combinatorial properties that our randomized
constructions only satisfy with high probability, so this module provides the
checking machinery used by :mod:`repro.core.selective` (construct–verify–retry
loops), by the test suite, and by experiment E8:

* :func:`is_selective_for` — exact check of the paper's selectivity property
  for a single contender set ``X``;
* :func:`selectivity_violations` — exhaustive search for violating sets of a
  given size range (feasible for small ``n``/``k``);
* :func:`monte_carlo_selectivity` — sampled estimate of the violation rate for
  larger instances;
* :func:`is_strongly_selective_for` / :func:`is_cover_free` — the stronger
  properties guaranteed by explicit superimposed-code constructions.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

from repro._util import RngLike, as_generator, validate_k_n
from repro.combinatorics.selectors import SetFamily

__all__ = [
    "is_selective_for",
    "hits_exactly_one",
    "selectivity_violations",
    "exhaustive_selectivity_check",
    "monte_carlo_selectivity",
    "is_strongly_selective_for",
    "is_cover_free",
]


def hits_exactly_one(family: SetFamily, contenders: Iterable[int]) -> Optional[int]:
    """Return the index of the first set intersecting ``contenders`` in exactly one element.

    Returns ``None`` when no such set exists.  This is the basic "isolation"
    event: the slot at which exactly one awake station transmits.
    """
    contender_set = frozenset(int(x) for x in contenders)
    for idx, s in enumerate(family.sets):
        if len(s & contender_set) == 1:
            return idx
    return None


def is_selective_for(family: SetFamily, contenders: Iterable[int]) -> bool:
    """Return True iff some set of ``family`` intersects ``contenders`` in exactly one element."""
    return hits_exactly_one(family, contenders) is not None


def selectivity_violations(
    family: SetFamily,
    k: int,
    *,
    min_size: Optional[int] = None,
    max_sets: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """Exhaustively find contender sets that the family fails to select.

    Checks every subset ``X ⊆ [n]`` with ``min_size <= |X| <= k`` (the paper's
    definition uses ``k/2 <= |X| <= k``; pass ``min_size=k//2`` — the default —
    to match it).  Exponential in ``n``; intended for the small instances used
    in unit tests.

    Parameters
    ----------
    family:
        Candidate family.
    k:
        Upper bound of the contender-set size range.
    min_size:
        Lower bound of the range (defaults to ``max(1, k // 2)``).
    max_sets:
        If given, stop after collecting this many violations.

    Returns
    -------
    list of tuples
        Each violating contender set, as a sorted tuple of station IDs.
    """
    k, n = validate_k_n(k, family.n)
    lo = max(1, k // 2) if min_size is None else max(1, min_size)
    violations: List[Tuple[int, ...]] = []
    universe = range(1, n + 1)
    for size in range(lo, k + 1):
        for subset in combinations(universe, size):
            if not is_selective_for(family, subset):
                violations.append(subset)
                if max_sets is not None and len(violations) >= max_sets:
                    return violations
    return violations


def exhaustive_selectivity_check(family: SetFamily, k: int) -> bool:
    """Return True iff ``family`` is an ``(n, k)``-selective family (exact check).

    Uses the paper's definition: for every ``X`` with ``k/2 <= |X| <= k`` some
    set intersects ``X`` in exactly one element.  Exponential; use only for
    small ``n``.
    """
    return not selectivity_violations(family, k, max_sets=1)


def monte_carlo_selectivity(
    family: SetFamily,
    k: int,
    *,
    trials: int = 1000,
    rng: RngLike = None,
    min_size: Optional[int] = None,
) -> float:
    """Estimate the fraction of random contender sets that the family selects.

    Samples ``trials`` subsets with sizes uniform in ``[min_size, k]`` (default
    ``[max(1, k//2), k]``) and members uniform without replacement, and returns
    the fraction for which the selectivity property holds.  A correct selective
    family returns 1.0; randomized constructions that have not been verified
    may return slightly less.
    """
    k, n = validate_k_n(k, family.n)
    lo = max(1, k // 2) if min_size is None else max(1, min_size)
    if lo > k:
        raise ValueError(f"min_size {lo} exceeds k {k}")
    gen = as_generator(rng)
    successes = 0
    for _ in range(trials):
        size = int(gen.integers(lo, k + 1))
        size = min(size, n)
        contenders = gen.choice(n, size=size, replace=False) + 1
        if is_selective_for(family, contenders.tolist()):
            successes += 1
    return successes / trials


def is_strongly_selective_for(family: SetFamily, contenders: Iterable[int]) -> bool:
    """Return True iff *every* contender is isolated by some set of the family.

    Strong selectivity means: for every ``x`` in the contender set ``X`` there
    exists a set ``F`` with ``X ∩ F = {x}``.  Explicit superimposed-code
    constructions guarantee this for all ``|X| <= k + 1``.
    """
    contender_set = frozenset(int(x) for x in contenders)
    isolated: Set[int] = set()
    for s in family.sets:
        inter = s & contender_set
        if len(inter) == 1:
            isolated.add(next(iter(inter)))
            if len(isolated) == len(contender_set):
                return True
    return isolated == contender_set


def is_cover_free(family: SetFamily, k: int, *, exhaustive_limit: int = 2**16) -> bool:
    """Check the k-cover-freeness of the *dual* code of a set family.

    Interpreting the family as a code (station ``u``'s codeword is its
    membership vector across sets), the family is ``k``-cover-free iff no
    codeword is covered by the union of any ``k`` others.  The check is
    exhaustive over all ``(k+1)``-subsets and is guarded by
    ``exhaustive_limit`` on the number of subsets examined.
    """
    k, n = validate_k_n(k, family.n)
    matrix = family.membership_matrix()  # (length, n) boolean
    codewords = matrix.T  # (n, length)
    from math import comb

    total = comb(n, 1) * comb(n - 1, min(k, n - 1)) if n > 1 else 1
    if total > exhaustive_limit:
        raise ValueError(
            f"exhaustive cover-freeness check would examine ~{total} subsets, "
            f"exceeding exhaustive_limit={exhaustive_limit}"
        )
    stations = list(range(n))
    for target in stations:
        others = [s for s in stations if s != target]
        for cover in combinations(others, min(k, len(others))):
            union = np.zeros(codewords.shape[1], dtype=bool)
            for c in cover:
                union |= codewords[c]
            if bool(np.all(union[codewords[target]])):
                return False
    return True
