"""Combinatorial substrate: primes, finite fields, superimposed codes, selectors.

The deterministic algorithms in the paper are driven by combinatorial objects
— *(n, k)-selective families* and the *waking matrix*.  This subpackage
provides the raw building blocks used by :mod:`repro.core.selective` and
:mod:`repro.core.waking_matrix`:

* :mod:`repro.combinatorics.primes` — prime sieves and prime-power search used
  by explicit constructions;
* :mod:`repro.combinatorics.finite_field` — arithmetic in prime fields GF(p)
  and polynomial evaluation used by Reed–Solomon style codes;
* :mod:`repro.combinatorics.superimposed` — Kautz–Singleton superimposed codes
  (k-cover-free families), which yield explicit strongly selective families;
* :mod:`repro.combinatorics.selectors` — binary selectors / strongly selective
  families and their conversions to the set-family representation;
* :mod:`repro.combinatorics.verification` — exhaustive and Monte-Carlo
  verification of selectivity and cover-freeness properties.
"""

from repro.combinatorics.primes import (
    is_prime,
    next_prime,
    next_prime_power,
    primes_up_to,
    prime_factors,
)
from repro.combinatorics.finite_field import PrimeField, Polynomial
from repro.combinatorics.superimposed import (
    SuperimposedCode,
    kautz_singleton_code,
    code_to_set_family,
)
from repro.combinatorics.selectors import (
    SetFamily,
    binary_selector,
    strongly_selective_family,
    singleton_family,
    power_of_two_blocks,
)
from repro.combinatorics.verification import (
    is_selective_for,
    is_strongly_selective_for,
    is_cover_free,
    selectivity_violations,
    monte_carlo_selectivity,
)

__all__ = [
    "is_prime",
    "next_prime",
    "next_prime_power",
    "primes_up_to",
    "prime_factors",
    "PrimeField",
    "Polynomial",
    "SuperimposedCode",
    "kautz_singleton_code",
    "code_to_set_family",
    "SetFamily",
    "binary_selector",
    "strongly_selective_family",
    "singleton_family",
    "power_of_two_blocks",
    "is_selective_for",
    "is_strongly_selective_for",
    "is_cover_free",
    "selectivity_violations",
    "monte_carlo_selectivity",
]
